// Package phys models the physical substrate DVC virtualises: clusters of
// nodes with CPUs, RAM, disks and hardware clocks, plus fault injection.
//
// The paper's motivation (§1) is that hardware reliability will not
// improve, so software must hide faults. Nodes here fail — crash outright
// or with advance warning ("when hardware faults can be predicted") — and
// everything running on them dies with them.
//
// The substrate is built to be cheap at 10k nodes: a Node is a thin
// handle (site pointer + dense index) over struct-of-arrays state owned
// by the Site, hardware Specs are interned so ten thousand identical
// nodes share one record, and the node listings callers hit on scheduler
// and fault paths (Nodes, UpNodes) are maintained sorted indexes instead
// of map walks re-sorted per call.
package phys

import (
	"fmt"
	"sort"

	"dvc/internal/clock"
	"dvc/internal/netsim"
	"dvc/internal/sim"
)

// Spec describes one node's hardware.
//
// Specs are interned: AddCluster stores one copy of each distinct Spec in
// a site-level table and nodes reference it by index, so a 10k-node site
// with identical hardware holds one Spec, not 10k. The table is
// append-only and records are immutable — there is deliberately no
// Node.SetSpec, because writing through a shared record would silently
// retune every node that interned the same hardware. Model heterogeneous
// hardware by adding clusters with different Specs.
type Spec struct {
	// RAMBytes is physical memory; it bounds the RAM of hosted VMs.
	RAMBytes int64
	// DiskBandwidth is the local/staging disk bandwidth in bytes/s,
	// which paces checkpoint image dumps.
	DiskBandwidth float64
	// GFlops is the node's compute rate, used by workloads to convert
	// flop counts into compute time.
	GFlops float64
}

// DefaultSpec matches a 2007-era dual-socket cluster node.
func DefaultSpec() Spec {
	return Spec{
		RAMBytes:      4 << 30,
		DiskBandwidth: 60e6,
		GFlops:        10,
	}
}

// Node is one physical machine: a handle into the Site's
// struct-of-arrays node tables. Only the fault callbacks live on the
// handle itself; identity, placement, spec and health are site state.
type Node struct {
	site *Site
	idx  int32

	onCrash  []func()
	onRepair []func()
}

// Stack returns the node's installed software stack label (empty =
// unspecified). Jobs that need a particular stack can only run natively
// on matching nodes — the constraint DVC's per-job virtual clusters
// remove.
func (n *Node) Stack() string { return n.site.clusterStack[n.site.cluster[n.idx]] }

// ID returns the node's identifier.
//
//dvc:hotpath
func (n *Node) ID() string { return n.site.ids[n.idx] }

// Index returns the node's dense site-wide index (creation order).
// Schedulers use it to keep per-node state in flat arrays instead of
// string-keyed maps.
//
//dvc:hotpath
func (n *Node) Index() int { return int(n.idx) }

// Cluster returns the name of the cluster the node belongs to.
func (n *Node) Cluster() string { return n.site.clusterName[n.site.cluster[n.idx]] }

// Spec returns the node's hardware description.
func (n *Node) Spec() Spec { return n.site.specs[n.site.spec[n.idx]] }

// Clock returns the node's hardware clock.
func (n *Node) Clock() *clock.Clock { return n.site.clks[n.idx] }

// Up reports whether the node is healthy.
//
//dvc:hotpath
func (n *Node) Up() bool { return n.site.up[n.idx] }

// OnCrash registers a callback invoked when the node fails. The
// hypervisor uses this to kill hosted domains.
func (n *Node) OnCrash(fn func()) { n.onCrash = append(n.onCrash, fn) }

// OnRepair registers a callback invoked when the node comes back.
func (n *Node) OnRepair(fn func()) { n.onRepair = append(n.onRepair, fn) }

// Fail crashes the node: everything it hosts dies.
func (n *Node) Fail() {
	if !n.site.up[n.idx] {
		return
	}
	n.site.up[n.idx] = false
	for _, fn := range n.onCrash {
		fn()
	}
}

// Repair brings the node back (empty: whatever it hosted is gone).
func (n *Node) Repair() {
	if n.site.up[n.idx] {
		return
	}
	n.site.up[n.idx] = true
	for _, fn := range n.onRepair {
		fn()
	}
}

// Site is a collection of clusters sharing a fabric — the multi-cluster
// environment DVC spans (paper Figure 1). Per-node state lives in
// parallel arrays indexed by each node's dense creation index; Node
// handles are stable pointers over those arrays.
type Site struct {
	Kernel *sim.Kernel
	Fabric *netsim.Fabric
	NTP    *clock.NTPDaemon

	clockCfg clock.Config

	// Interned cluster tables, indexed by cluster creation order.
	clusterIdx   map[string]int32
	clusterName  []string
	clusterStack []string

	// specs is the interned hardware table (see Spec).
	specs []Spec

	// Struct-of-arrays node state, indexed by dense node index.
	ids     []string
	cluster []int32
	spec    []int32
	up      []bool
	clks    []*clock.Clock
	handles []*Node

	byID map[string]int32

	// Maintained listings: sorted is every node ordered by ID;
	// byCluster/sortedByCluster are per-cluster views in creation and ID
	// order. They are rebuilt once per AddCluster, never per query.
	sorted          []*Node
	byCluster       [][]*Node
	sortedByCluster [][]*Node
}

// NewSite creates a site. The NTP daemon is created but not started;
// experiments choose whether clocks are disciplined (E1 runs without).
func NewSite(k *sim.Kernel, clockCfg clock.Config, ntpCfg clock.NTPConfig) *Site {
	return &Site{
		Kernel:     k,
		Fabric:     netsim.NewFabric(k),
		NTP:        clock.NewNTPDaemon(k, ntpCfg),
		clusterIdx: make(map[string]int32),
		byID:       make(map[string]int32),
		clockCfg:   clockCfg,
	}
}

// DefaultSite builds a site with commodity clocks and LAN NTP.
func DefaultSite(k *sim.Kernel) *Site {
	return NewSite(k, clock.DefaultConfig(), clock.DefaultNTPConfig())
}

// internSpec returns the index of spec in the interned table, adding it
// if unseen. The table stays tiny (one entry per distinct hardware
// class), so a linear scan beats any map.
func (s *Site) internSpec(spec Spec) int32 {
	for i, sp := range s.specs {
		if sp == spec {
			return int32(i)
		}
	}
	s.specs = append(s.specs, spec)
	return int32(len(s.specs) - 1)
}

// AddCluster creates a cluster of count identical nodes named
// "<name>-nNN", registers its link profile, and returns the nodes in
// creation order.
func (s *Site) AddCluster(name string, count int, spec Spec, profile netsim.LinkProfile) []*Node {
	if _, dup := s.clusterIdx[name]; dup {
		panic(fmt.Sprintf("phys: duplicate cluster %q", name))
	}
	s.Fabric.AddCluster(name, profile)
	ci := int32(len(s.clusterName))
	s.clusterIdx[name] = ci
	s.clusterName = append(s.clusterName, name)
	s.clusterStack = append(s.clusterStack, "")
	si := s.internSpec(spec)

	nodes := make([]*Node, count)
	for i := range nodes {
		idx := int32(len(s.ids))
		n := &Node{site: s, idx: idx}
		clk := clock.New(s.Kernel, s.clockCfg)
		s.NTP.Add(clk)
		s.ids = append(s.ids, fmt.Sprintf("%s-n%02d", name, i))
		s.cluster = append(s.cluster, ci)
		s.spec = append(s.spec, si)
		s.up = append(s.up, true)
		s.clks = append(s.clks, clk)
		s.handles = append(s.handles, n)
		s.byID[s.ids[idx]] = idx
		nodes[i] = n
	}
	s.byCluster = append(s.byCluster, nodes)

	// Maintain the sorted indexes. Within a cluster creation order is not
	// ID order once counts pass the zero-pad width ("x-n100" < "x-n99"),
	// so both views sort explicitly.
	clusterSorted := append([]*Node(nil), nodes...)
	sortNodesByID(clusterSorted)
	s.sortedByCluster = append(s.sortedByCluster, clusterSorted)
	s.sorted = append(s.sorted, nodes...)
	sortNodesByID(s.sorted)
	return nodes
}

// sortNodesByID orders node handles by their string ID.
func sortNodesByID(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].ID() < nodes[j].ID()
	})
}

// Cluster returns the nodes of a cluster in creation order.
func (s *Site) Cluster(name string) []*Node {
	ci, ok := s.clusterIdx[name]
	if !ok {
		return nil
	}
	return s.byCluster[ci]
}

// SetClusterStack labels every node of a cluster with a software stack
// (OS image, MPI build, libraries). Physical jobs demand stack equality;
// virtual clusters carry their own stack and do not care. The label is
// cluster-level state: one string per cluster, however many nodes.
func (s *Site) SetClusterStack(name, stack string) {
	if ci, ok := s.clusterIdx[name]; ok {
		s.clusterStack[ci] = stack
	}
}

// ClusterNames returns cluster names in creation order.
func (s *Site) ClusterNames() []string { return append([]string(nil), s.clusterName...) }

// NodeCount returns the number of nodes across all clusters.
func (s *Site) NodeCount() int { return len(s.ids) }

// Node finds a node by ID.
func (s *Site) Node(id string) (*Node, bool) {
	idx, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.handles[idx], true
}

// NodeAt returns the node with dense index i (creation order).
func (s *Site) NodeAt(i int) *Node { return s.handles[i] }

// Nodes returns every node, sorted by ID. The slice is the site's
// maintained index — shared across calls, not to be modified by callers.
func (s *Site) Nodes() []*Node { return s.sorted }

// UpNodes returns the healthy nodes of a cluster (all clusters if name
// is empty), sorted by ID. The base listing is pre-sorted, so each call
// is one linear filter pass — no map walk, no sort.
func (s *Site) UpNodes(name string) []*Node {
	base := s.sorted
	if name != "" {
		ci, ok := s.clusterIdx[name]
		if !ok {
			return nil
		}
		base = s.sortedByCluster[ci]
	}
	out := make([]*Node, 0, len(base))
	for _, n := range base {
		if s.up[n.idx] {
			out = append(out, n)
		}
	}
	return out
}
