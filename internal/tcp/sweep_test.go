package tcp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

func TestSnapshotEquivalenceSweep(t *testing.T) {
	// A deterministic 3000-case sweep over snapshot cut points; this
	// caught the go-back-1 recovery bug the quick-check found first.
	fail := 0
	for trial := 0; trial < 3000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		seed := rng.Int63()
		cut := uint16(rng.Intn(65536))
		if !snapshotCase(seed, cut) {
			fail++
			fmt.Printf("FAIL trial=%d seed=%d cut=%d\n", trial, seed, cut)
			if fail > 5 {
				t.Fatal("enough")
			}
		}
	}
	if fail > 0 {
		t.Fatalf("%d failures", fail)
	}
}

func snapshotCase(seed int64, cutMicros uint16) bool {
	k := sim.NewKernel(seed)
	fab := netsim.NewFabric(k)
	fab.AddCluster("c", netsim.EthernetGigE())
	cfg := DefaultConfig()
	cfg.MSS = 900
	sa := NewStack(k, fab, "A", cfg)
	sb := NewStack(k, fab, "B", cfg)
	pa := fab.Attach("A", "c", sa.Deliver)
	pb := fab.Attach("B", "c", sb.Deliver)
	var cb *Conn
	sb.Listen(1, func(c *Conn) { cb = c })
	ca := sa.Connect("B", 1)
	k.RunFor(sim.Second)
	msg := make([]byte, 20000)
	for i := range msg {
		msg[i] = byte(i)
	}
	ca.Write(msg)
	k.RunFor(sim.Time(cutMicros) * sim.Microsecond)
	var got []byte
	if cb != nil {
		got = append(got, cb.Read(cb.Readable())...)
	}

	sa.Freeze()
	sb.Freeze()
	pa.SetUp(false)
	pb.SetUp(false)
	snapA, snapB := sa.Snapshot(), sb.Snapshot()
	pa.Detach()
	pb.Detach()
	k.RunFor(sim.Minute)
	sa2 := RestoreStack(k, fab, snapA)
	sb2 := RestoreStack(k, fab, snapB)
	fab.Attach("A", "c", sa2.Deliver)
	fab.Attach("B", "c", sb2.Deliver)
	sa2.Thaw()
	sb2.Thaw()
	cb2 := sb2.Conns()[0]
	deadline := k.Now() + 10*sim.Minute
	for len(got) < len(msg) && k.Now() < deadline {
		k.RunFor(sim.Second)
		got = append(got, cb2.Read(cb2.Readable())...)
	}
	return bytes.Equal(got, msg)
}
