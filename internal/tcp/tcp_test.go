package tcp

import (
	"bytes"
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

// pair wires two stacks onto a fabric with ~55us latency.
type pair struct {
	k        *sim.Kernel
	fabric   *netsim.Fabric
	pa, pb   *netsim.Port
	sa, sb   *Stack
	accepted []*Conn
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	k := sim.NewKernel(99)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	p := &pair{k: k, fabric: f}
	p.sa = NewStack(k, f, "A", cfg)
	p.sb = NewStack(k, f, "B", cfg)
	p.pa = f.Attach("A", "c", p.sa.Deliver)
	p.pb = f.Attach("B", "c", p.sb.Deliver)
	p.sb.Listen(5000, func(c *Conn) { p.accepted = append(p.accepted, c) })
	return p
}

// connect establishes a conn from A to B:5000 and returns both ends.
func (p *pair) connect(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ca := p.sa.Connect("B", 5000)
	p.k.RunFor(sim.Second)
	if ca.State() != StateEstablished {
		t.Fatalf("client state = %v, want Established", ca.State())
	}
	if len(p.accepted) == 0 {
		t.Fatal("no accepted connection")
	}
	cb := p.accepted[len(p.accepted)-1]
	if cb.State() != StateEstablished {
		t.Fatalf("server state = %v, want Established", cb.State())
	}
	return ca, cb
}

func drain(c *Conn) []byte { return c.Read(c.Readable()) }

func TestHandshake(t *testing.T) {
	p := newPair(t, DefaultConfig())
	established := false
	ca := p.sa.Connect("B", 5000)
	ca.OnEstablished = func() { established = true }
	p.k.RunFor(sim.Second)
	if !established {
		t.Fatal("OnEstablished did not fire")
	}
	if len(p.accepted) != 1 {
		t.Fatalf("accepted %d conns, want 1", len(p.accepted))
	}
}

func TestDataTransfer(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	msg := []byte("the quick brown fox jumps over the lazy dog")
	if err := ca.Write(msg); err != nil {
		t.Fatal(err)
	}
	p.k.RunFor(sim.Second)
	if got := drain(cb); !bytes.Equal(got, msg) {
		t.Fatalf("received %q, want %q", got, msg)
	}
	// And the reverse direction.
	if err := cb.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	p.k.RunFor(sim.Second)
	if got := drain(ca); string(got) != "pong" {
		t.Fatalf("reverse direction got %q", got)
	}
}

func TestLargeTransferSegmentsAndReassembles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSS = 1000
	cfg.SendWindow = 4000
	p := newPair(t, cfg)
	ca, cb := p.connect(t)
	msg := make([]byte, 50_000)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	ca.Write(msg)
	p.k.RunFor(10 * sim.Second)
	got := drain(cb)
	if !bytes.Equal(got, msg) {
		t.Fatalf("large transfer corrupted: got %d bytes", len(got))
	}
	if ca.SendBacklog() != 0 {
		t.Fatalf("send backlog %d after full ack", ca.SendBacklog())
	}
}

func TestOnReadableFires(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	fires := 0
	cb.OnReadable = func() { fires++ }
	ca.Write([]byte("x"))
	p.k.RunFor(sim.Second)
	if fires == 0 {
		t.Fatal("OnReadable never fired")
	}
}

func TestLostDataSegmentIsRetransmitted(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	// Drop the next data segment once.
	dropped := false
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if ok && seg.Data.Len() > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	ca.Write([]byte("hello"))
	p.k.RunFor(5 * sim.Second)
	if !dropped {
		t.Fatal("drop rule never matched")
	}
	if got := drain(cb); string(got) != "hello" {
		t.Fatalf("got %q after loss, want hello", got)
	}
	if ca.Retransmits == 0 {
		t.Fatal("no retransmission counted")
	}
}

func TestLostAckCausesDuplicateWhichIsReAcked(t *testing.T) {
	// Paper Scenario 2: the ACK is lost; the sender retransmits; the
	// receiver discards the duplicate and re-ACKs.
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	dropped := false
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if ok && pkt.Src == netsim.Addr("B") && seg.Flags.Has(FlagACK) && seg.Data.Len() == 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	ca.Write([]byte("data"))
	p.k.RunFor(5 * sim.Second)
	if got := drain(cb); string(got) != "data" {
		t.Fatalf("receiver got %q", got)
	}
	if cb.DupSegments == 0 {
		t.Fatal("receiver never saw the duplicate segment")
	}
	if ca.SendBacklog() != 0 {
		t.Fatal("sender still has unacked data: re-ACK did not arrive")
	}
	if ca.State() != StateEstablished || cb.State() != StateEstablished {
		t.Fatal("connection damaged by a single lost ACK")
	}
}

func TestRetriesExhaustedResetsConnection(t *testing.T) {
	cfg := DefaultConfig()
	p := newPair(t, cfg)
	ca, cb := p.connect(t)
	var gotErr error
	ca.OnError = func(err error) { gotErr = err }
	// Peer vanishes: lower its port so everything to B is lost.
	p.pb.SetUp(false)
	ca.Write([]byte("into the void"))
	p.k.RunFor(30 * sim.Second)
	if ca.State() != StateReset {
		t.Fatalf("sender state = %v, want Reset", ca.State())
	}
	if gotErr != ErrTimeout {
		t.Fatalf("OnError got %v, want ErrTimeout", gotErr)
	}
	if int(ca.Retransmits) != cfg.MaxRetries {
		t.Fatalf("retransmits = %d, want %d", ca.Retransmits, cfg.MaxRetries)
	}
	_ = cb
}

func TestResetHappensAfterRetryBudget(t *testing.T) {
	cfg := DefaultConfig()
	p := newPair(t, cfg)
	ca, _ := p.connect(t)
	budget := cfg.RetryBudget(ca.RTO()) // from the pre-failure RTO
	p.pb.SetUp(false)
	start := p.k.Now()
	ca.Write([]byte("x"))
	for ca.State() == StateEstablished && p.k.Now() < start+60*sim.Second {
		p.k.RunFor(100 * sim.Millisecond)
	}
	elapsed := p.k.Now() - start
	// The reset must land within [budget/2, budget*2] of the nominal
	// budget (RTT estimation shifts the initial RTO).
	if elapsed < budget/2 || elapsed > budget*2 {
		t.Fatalf("reset after %v, nominal budget %v", elapsed, budget)
	}
}

func TestRTOBacksOffExponentially(t *testing.T) {
	cfg := DefaultConfig()
	p := newPair(t, cfg)
	ca, _ := p.connect(t)
	rto0 := ca.RTO()
	p.pb.SetUp(false)
	ca.Write([]byte("x"))
	p.k.RunFor(rto0 + 50*sim.Millisecond)
	if ca.RTO() != rto0*2 {
		t.Fatalf("after 1 timeout RTO = %v, want %v", ca.RTO(), rto0*2)
	}
	p.k.RunFor(rto0 * 2)
	if ca.RTO() != rto0*4 {
		t.Fatalf("after 2 timeouts RTO = %v, want %v", ca.RTO(), rto0*4)
	}
}

func TestAckResetsRetryCount(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	// Lose two data transmissions, then let traffic flow: connection must
	// survive and deliver.
	losses := 0
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if ok && seg.Data.Len() > 0 && losses < 2 {
			losses++
			return true
		}
		return false
	}
	ca.Write([]byte("persistent"))
	p.k.RunFor(10 * sim.Second)
	if got := drain(cb); string(got) != "persistent" {
		t.Fatalf("got %q", got)
	}
	// More traffic after recovery must start from a clean retry count.
	ca.Write([]byte("more"))
	p.k.RunFor(10 * sim.Second)
	if got := drain(cb); string(got) != "more" {
		t.Fatalf("follow-up got %q", got)
	}
	if ca.State() != StateEstablished {
		t.Fatalf("state %v after recovery", ca.State())
	}
}

func TestGracefulClose(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	ca.Write([]byte("last words"))
	ca.Close()
	p.k.RunFor(2 * sim.Second)
	if got := drain(cb); string(got) != "last words" {
		t.Fatalf("data lost at close: %q", got)
	}
	if !cb.EOF() {
		t.Fatal("receiver did not see EOF")
	}
	cb.Close()
	p.k.RunFor(2 * sim.Second)
	if ca.State() != StateClosed || cb.State() != StateClosed {
		t.Fatalf("states after mutual close: %v / %v", ca.State(), cb.State())
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, _ := p.connect(t)
	ca.Close()
	if err := ca.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	var gotErr error
	cb.OnError = func(err error) { gotErr = err }
	ca.Abort()
	p.k.RunFor(sim.Second)
	if cb.State() != StateReset {
		t.Fatalf("peer state = %v, want Reset", cb.State())
	}
	if gotErr != ErrReset {
		t.Fatalf("peer OnError = %v, want ErrReset", gotErr)
	}
}

func TestConnectToNonListeningPortResets(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca := p.sa.Connect("B", 9999)
	var gotErr error
	ca.OnError = func(err error) { gotErr = err }
	p.k.RunFor(sim.Second)
	if ca.State() != StateReset || gotErr != ErrReset {
		t.Fatalf("state=%v err=%v, want Reset/ErrReset", ca.State(), gotErr)
	}
}

func TestLostSYNIsRetried(t *testing.T) {
	p := newPair(t, DefaultConfig())
	dropped := false
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if ok && seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) && !dropped {
			dropped = true
			return true
		}
		return false
	}
	ca := p.sa.Connect("B", 5000)
	p.k.RunFor(5 * sim.Second)
	if ca.State() != StateEstablished {
		t.Fatalf("state = %v after SYN loss, want Established", ca.State())
	}
}

func TestLostSYNACKIsRecoveredByDupSYN(t *testing.T) {
	p := newPair(t, DefaultConfig())
	dropped := false
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if ok && seg.Flags.Has(FlagSYN) && seg.Flags.Has(FlagACK) && !dropped {
			dropped = true
			return true
		}
		return false
	}
	ca := p.sa.Connect("B", 5000)
	p.k.RunFor(5 * sim.Second)
	if ca.State() != StateEstablished {
		t.Fatalf("state = %v after SYN|ACK loss", ca.State())
	}
	if len(p.accepted) != 1 {
		t.Fatalf("accepted %d, want 1", len(p.accepted))
	}
}

func TestSendWindowLimitsInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSS = 1000
	cfg.SendWindow = 2000
	p := newPair(t, cfg)
	ca, cb := p.connect(t)
	msg := make([]byte, 10_000)
	ca.Write(msg)
	// Immediately after Write, at most SendWindow bytes may be in flight.
	if inFlight := int(ca.sndNxt - ca.sndUna); inFlight > cfg.SendWindow {
		t.Fatalf("in flight %d > window %d", inFlight, cfg.SendWindow)
	}
	p.k.RunFor(10 * sim.Second)
	if got := drain(cb); len(got) != len(msg) {
		t.Fatalf("windowed transfer delivered %d of %d", len(got), len(msg))
	}
}

func TestRTTEstimationLowersRTO(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	for i := 0; i < 20; i++ {
		ca.Write([]byte("ping"))
		p.k.RunFor(50 * sim.Millisecond)
		drain(cb)
	}
	// LAN RTT is ~110us; RTO should sit at the MinRTO clamp.
	if ca.RTO() != DefaultConfig().MinRTO {
		t.Fatalf("RTO = %v after many samples, want clamp at %v", ca.RTO(), DefaultConfig().MinRTO)
	}
	if !ca.hasRTT {
		t.Fatal("no RTT samples recorded")
	}
}

func TestFreezeStopsTimersAndTraffic(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	_ = cb
	// Freeze B, then have A write: A should burn retries while B is
	// frozen, because B is not ACKing.
	p.sb.Freeze()
	p.pb.SetUp(false)
	ca.Write([]byte("x"))
	p.k.RunFor(500 * sim.Millisecond)
	if ca.Retransmits == 0 {
		t.Fatal("running sender should be retransmitting to a frozen peer")
	}
	// B's own timers must not have fired while frozen.
	if p.sb.SegmentsSent != p.sb.SegmentsSent {
		t.Fatal("unreachable")
	}
}

func TestFreezeThawPreservesTimerRemainder(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, _ := p.connect(t)
	p.pb.SetUp(false) // peer gone: retransmit timer will be armed
	ca.Write([]byte("x"))
	p.k.RunFor(50 * sim.Millisecond)
	retransBefore := ca.Retransmits
	p.sa.Freeze()
	p.pa.SetUp(false)
	// A long pause: if timers kept running, retries would exhaust.
	p.k.RunFor(5 * sim.Minute)
	if ca.Retransmits != retransBefore {
		t.Fatal("frozen connection retransmitted")
	}
	if ca.State() != StateEstablished {
		t.Fatalf("frozen connection changed state: %v", ca.State())
	}
	p.pa.SetUp(true)
	p.pb.SetUp(true)
	p.sa.Thaw()
	p.k.RunFor(30 * sim.Second)
	// After thaw the retransmit fires and the (revived) peer ACKs.
	if ca.SendBacklog() != 0 {
		t.Fatalf("data not delivered after thaw; backlog %d, state %v", ca.SendBacklog(), ca.State())
	}
}

func TestScenario1LostInFlightMessage(t *testing.T) {
	// Paper Scenario 1: a message is on the wire when both VMs are
	// checkpointed; the message is lost; after restart the sender
	// retransmits it. Here "checkpoint" is freeze+snapshot+thaw on both
	// ends with the in-flight packet force-dropped.
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	// Cut ALL traffic (simulating the snapshot instant), write, then
	// freeze both sides with the data unACKed.
	p.fabric.DropRule = func(netsim.Packet) bool { return true }
	ca.Write([]byte("in flight"))
	p.k.RunFor(10 * sim.Millisecond)
	p.sa.Freeze()
	p.sb.Freeze()
	p.pa.SetUp(false)
	p.pb.SetUp(false)
	p.fabric.DropRule = nil

	// Simulate the restore gap.
	p.k.RunFor(time30())

	p.pa.SetUp(true)
	p.pb.SetUp(true)
	p.sa.Thaw()
	p.sb.Thaw()
	p.k.RunFor(30 * sim.Second)
	if got := drain(cb); string(got) != "in flight" {
		t.Fatalf("receiver got %q, want retransmitted message", got)
	}
	if ca.State() != StateEstablished || cb.State() != StateEstablished {
		t.Fatalf("states %v/%v after restore", ca.State(), cb.State())
	}
}

func time30() sim.Time { return 30 * sim.Second }

func TestScenario2LostAckAtSnapshot(t *testing.T) {
	// Paper Scenario 2: data was delivered and ACKed, but the ACK is lost
	// at the snapshot. After restore the sender retransmits, the receiver
	// re-ACKs the duplicate, and no data is duplicated to the app.
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)
	// Let the data through but drop ACKs from B.
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		return ok && pkt.Src == netsim.Addr("B") && seg.Data.Len() == 0 && seg.Flags.Has(FlagACK) && !seg.Flags.Has(FlagSYN)
	}
	ca.Write([]byte("exactly once"))
	p.k.RunFor(10 * sim.Millisecond)
	if cb.Readable() == 0 {
		t.Fatal("setup: data should have been delivered to B")
	}
	p.sa.Freeze()
	p.sb.Freeze()
	p.pa.SetUp(false)
	p.pb.SetUp(false)
	p.fabric.DropRule = nil
	p.k.RunFor(time30())
	p.pa.SetUp(true)
	p.pb.SetUp(true)
	p.sa.Thaw()
	p.sb.Thaw()
	p.k.RunFor(30 * sim.Second)
	if got := drain(cb); string(got) != "exactly once" {
		t.Fatalf("app data %q, want exactly-once delivery", got)
	}
	if cb.DupSegments == 0 {
		t.Fatal("expected a duplicate segment after restore")
	}
	if ca.SendBacklog() != 0 {
		t.Fatal("sender never got the re-ACK")
	}
}

func TestSnapshotRestoreMidTransfer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSS = 1000
	cfg.SendWindow = 3000
	p := newPair(t, cfg)
	ca, cb := p.connect(t)
	msg := make([]byte, 20_000)
	for i := range msg {
		msg[i] = byte(i)
	}
	ca.Write(msg)
	p.k.RunFor(2 * sim.Millisecond) // partway through the transfer
	received := drain(cb)

	// Checkpoint both stacks.
	p.sa.Freeze()
	p.sb.Freeze()
	p.pa.SetUp(false)
	p.pb.SetUp(false)
	snapA, snapB := p.sa.Snapshot(), p.sb.Snapshot()

	// Destroy the originals (node died); restore onto the same fabric.
	p.pa.Detach()
	p.pb.Detach()
	p.k.RunFor(time30())
	sa2 := RestoreStack(p.k, p.fabric, snapA)
	sb2 := RestoreStack(p.k, p.fabric, snapB)
	p.fabric.Attach("A", "c", sa2.Deliver)
	p.fabric.Attach("B", "c", sb2.Deliver)
	sa2.Thaw()
	sb2.Thaw()
	p.k.RunFor(60 * sim.Second)

	ca2 := sa2.Conns()[0]
	cb2 := sb2.Conns()[0]
	received = append(received, drain(cb2)...)
	if !bytes.Equal(received, msg) {
		t.Fatalf("after restore: received %d bytes, want %d intact", len(received), len(msg))
	}
	if ca2.SendBacklog() != 0 {
		t.Fatalf("restored sender backlog %d", ca2.SendBacklog())
	}
	if ca2.State() != StateEstablished || cb2.State() != StateEstablished {
		t.Fatalf("restored states %v/%v", ca2.State(), cb2.State())
	}
}

func TestSnapshotRequiresFreeze(t *testing.T) {
	p := newPair(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot of running stack did not panic")
		}
	}()
	p.sa.Snapshot()
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, _ := p.connect(t)
	p.pb.SetUp(false)
	ca.Write([]byte("abc"))
	p.sa.Freeze()
	snap := p.sa.Snapshot()
	snap.Conns[0].SendBuf[0] = 'X'
	if ca.sendQ.view(0, 1).At(0) == 'X' {
		t.Fatal("snapshot aliases live buffers")
	}
}

func TestDupListenPanics(t *testing.T) {
	p := newPair(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate listen did not panic")
		}
	}()
	p.sb.Listen(5000, nil)
}

func TestEphemeralPortsUnique(t *testing.T) {
	p := newPair(t, DefaultConfig())
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		c := p.sa.Connect("B", 5000)
		if seen[c.Key().LocalPort] {
			t.Fatalf("duplicate ephemeral port %d", c.Key().LocalPort)
		}
		seen[c.Key().LocalPort] = true
	}
}

func TestRetryBudgetFormula(t *testing.T) {
	cfg := DefaultConfig()
	// 200ms * (1+2+4+8+16) = 6.2s
	want := 6200 * sim.Millisecond
	if got := cfg.RetryBudget(cfg.InitialRTO); got != want {
		t.Fatalf("RetryBudget = %v, want %v", got, want)
	}
}

func TestFlagsString(t *testing.T) {
	if (FlagSYN | FlagACK).String() != "SA" {
		t.Fatalf("flags string %q", (FlagSYN | FlagACK).String())
	}
	if Flags(0).String() != "-" {
		t.Fatal("zero flags should render as -")
	}
}

func TestConnStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateSynSent: "SynSent", StateSynRcvd: "SynRcvd", StateEstablished: "Established",
		StateClosing: "Closing", StateClosed: "Closed", StateReset: "Reset",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", int(s), s.String())
		}
	}
}
