package tcp

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/payload"
	"dvc/internal/sim"
)

// TestRingRetentionBounded is the regression test for the reslice-pinning
// bug the ring buffers fix: the old sendBuf/recvBuf were consumed with
// `buf = buf[n:]`, which keeps the entire backing array — including every
// already-ACKed or already-read byte — reachable for as long as the
// connection lives. After a large transfer fully drains, the rings must
// retain nothing: every consumed descriptor slot is nil so the chunk
// backing arrays are garbage.
func TestRingRetentionBounded(t *testing.T) {
	p := newPair(t, DefaultConfig())
	ca, cb := p.connect(t)

	const msgBytes = 256 << 10
	const rounds = 8
	var total []byte
	for i := 0; i < rounds; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, msgBytes)
		if err := ca.Write(msg); err != nil {
			t.Fatal(err)
		}
		p.k.RunFor(5 * sim.Second)
		total = append(total, drain(cb)...)
	}
	if len(total) != rounds*msgBytes {
		t.Fatalf("delivered %d bytes, want %d", len(total), rounds*msgBytes)
	}
	if got := ca.SendBacklog(); got != 0 {
		t.Fatalf("sender backlog %d after full ACK", got)
	}
	if got := ca.sendQ.retainedBytes(); got != 0 {
		t.Fatalf("drained send ring retains %d bytes", got)
	}
	if got := cb.recvQ.retainedBytes(); got != 0 {
		t.Fatalf("drained recv ring retains %d bytes", got)
	}
	// The descriptor arrays themselves must have released every chunk
	// reference: a non-nil slot outside the live window pins its backing
	// array exactly like the old reslice did.
	for _, r := range []*chunkRing{&ca.sendQ, &cb.recvQ} {
		for i, c := range r.chunks {
			if c != nil {
				t.Fatalf("ring slot %d still references a %d-byte chunk after drain", i, len(c))
			}
		}
	}
}

// TestOOOStashBoundedUnderLoss streams data through a lossy wire and
// checks, at every millisecond of the run, that the receiver's
// out-of-order stash never exceeds the receive window (== SendWindow in
// this symmetric stack). An honest go-back-N peer cannot legitimately
// put more than a window of data past the reassembly point, so the
// stash staying bounded costs nothing — and the transfer must still
// complete intact through the losses.
func TestOOOStashBoundedUnderLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSS = 1000
	cfg.SendWindow = 4000
	p := newPair(t, cfg)
	ca, cb := p.connect(t)

	n := 0
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if !ok || seg.Data.Len() == 0 {
			return false
		}
		n++
		return n%5 == 0 // drop every fifth data segment
	}

	msg := make([]byte, 100_000)
	for i := range msg {
		msg[i] = byte(i)
	}
	if err := ca.Write(msg); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for step := 0; step < 60_000; step++ {
		p.k.RunFor(sim.Millisecond)
		if cb.oooBytes > cfg.SendWindow {
			t.Fatalf("ooo stash %d bytes exceeds window %d at step %d", cb.oooBytes, cfg.SendWindow, step)
		}
		got = append(got, drain(cb)...)
		if len(got) == len(msg) {
			break
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("lossy transfer delivered %d bytes, want %d intact", len(got), len(msg))
	}
	if ca.Retransmits == 0 {
		t.Fatal("drop rule never forced a retransmission")
	}
	if p.sa.Stats.OOODroppedBytes != 0 || p.sb.Stats.OOODroppedBytes != 0 {
		t.Fatalf("honest peer hit the ooo bound: %d/%d bytes dropped",
			p.sa.Stats.OOODroppedBytes, p.sb.Stats.OOODroppedBytes)
	}
}

// TestOOOOutOfWindowSegmentDropped injects a segment far beyond the
// receive window — something no honest go-back-N peer can send — and
// verifies it is dropped and accounted in Stats.OOODroppedBytes instead
// of growing the stash without limit.
func TestOOOOutOfWindowSegmentDropped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSS = 1000
	cfg.SendWindow = 3000
	p := newPair(t, cfg)
	_, cb := p.connect(t)
	key := cb.Key()

	inject := func(seq uint64, data []byte) {
		p.sb.Deliver(netsim.Packet{Src: key.RemoteAddr, Dst: "B", Payload: &Segment{
			SrcPort: key.RemotePort,
			DstPort: key.LocalPort,
			Flags:   FlagACK,
			Seq:     seq,
			Ack:     1,
			Data:    payload.Wrap(data),
		}})
	}

	// In-window out-of-order data is stashed.
	inject(cb.rcvNxt+1000, []byte("in-window"))
	if cb.oooBytes == 0 {
		t.Fatal("in-window out-of-order segment was not stashed")
	}
	stashed := cb.oooBytes

	// Out-of-window data is dropped and accounted.
	hostile := bytes.Repeat([]byte{0xee}, 500)
	inject(cb.rcvNxt+uint64(cfg.SendWindow)+10_000, hostile)
	if cb.oooBytes != stashed {
		t.Fatalf("out-of-window segment entered the stash (oooBytes %d -> %d)", stashed, cb.oooBytes)
	}
	if got := p.sb.Stats.OOODroppedBytes; got != uint64(len(hostile)) {
		t.Fatalf("OOODroppedBytes = %d, want %d", got, len(hostile))
	}

	// The boundary itself is inclusive: a segment ending exactly at
	// rcvNxt+window is legitimate for an honest peer and must be kept.
	edge := bytes.Repeat([]byte{0x33}, 100)
	inject(cb.rcvNxt+uint64(cfg.SendWindow)-uint64(len(edge)), edge)
	if cb.oooBytes != stashed+len(edge) {
		t.Fatalf("segment ending exactly at the window edge was dropped (oooBytes %d, want %d)",
			cb.oooBytes, stashed+len(edge))
	}
	if got := p.sb.Stats.OOODroppedBytes; got != uint64(len(hostile)) {
		t.Fatalf("edge segment was accounted as dropped (OOODroppedBytes %d)", got)
	}
}

// TestSnapshotRoundTripWithChunkedQueues freezes a connection
// mid-transfer — send queue part-ACKed, receive queue part-read, and the
// out-of-order map populated by a lost segment — and requires that
// snapshot -> restore -> snapshot reproduces the first snapshot exactly,
// both structurally and in encoded length. It then thaws the restored
// stacks and requires the transfer to complete intact, proving the
// restored rope-backed queues carry real state, not just matching
// images.
func TestSnapshotRoundTripWithChunkedQueues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSS = 1000
	cfg.SendWindow = 3000
	p := newPair(t, cfg)
	ca, cb := p.connect(t)

	// Lose the first data segment so the two behind it land in the
	// out-of-order stash.
	dropped := false
	p.fabric.DropRule = func(pkt netsim.Packet) bool {
		seg, ok := pkt.Payload.(*Segment)
		if ok && seg.Data.Len() > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}

	msg := make([]byte, 20_000)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	if err := ca.Write(msg); err != nil {
		t.Fatal(err)
	}
	p.k.RunFor(2 * sim.Millisecond) // in flight, before the retransmit timer
	if !dropped {
		t.Fatal("drop rule never matched")
	}
	if cb.oooBytes == 0 {
		t.Fatal("loss did not populate the out-of-order stash")
	}

	p.sa.Freeze()
	p.sb.Freeze()
	p.pa.SetUp(false)
	p.pb.SetUp(false)
	snapA, snapB := p.sa.Snapshot(), p.sb.Snapshot()
	if len(snapB.Conns) != 1 || len(snapB.Conns[0].OOO) == 0 {
		t.Fatal("snapshot did not capture the out-of-order stash")
	}

	// Round trip: restore (not attached to the fabric, so no traffic)
	// and re-snapshot. Everything the image carries must survive.
	gobLen := func(s *StackSnapshot) int {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	for _, snap := range []*StackSnapshot{snapA, snapB} {
		again := RestoreStack(p.k, p.fabric, snap).Snapshot()
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("snapshot of restored stack %s differs from original snapshot", snap.Addr)
		}
		if a, b := gobLen(snap), gobLen(again); a != b {
			t.Fatalf("encoded snapshot length changed across restore: %d -> %d", a, b)
		}
	}

	// Now restore for real: detach the originals, attach the restored
	// stacks, thaw, and finish the transfer.
	p.pa.Detach()
	p.pb.Detach()
	sa2 := RestoreStack(p.k, p.fabric, snapA)
	sb2 := RestoreStack(p.k, p.fabric, snapB)
	p.fabric.Attach("A", "c", sa2.Deliver)
	p.fabric.Attach("B", "c", sb2.Deliver)
	sa2.Thaw()
	sb2.Thaw()
	p.k.RunFor(60 * sim.Second)

	ca2, cb2 := sa2.Conns()[0], sb2.Conns()[0]
	if got := drain(cb2); !bytes.Equal(got, msg) {
		t.Fatalf("post-restore transfer delivered %d bytes, want %d intact", len(got), len(msg))
	}
	if ca2.SendBacklog() != 0 {
		t.Fatalf("restored sender still has %d bytes of backlog", ca2.SendBacklog())
	}
}
