// Package tcp implements the reliable transport the paper's Lazy
// Synchronous Checkpointing argument rests on (§3, Scenarios 1–2):
// sequence numbers, cumulative ACKs, retransmission with exponentially
// backed-off timeouts, and a bounded retry budget after which the
// connection resets.
//
// Two properties matter for LSC and are modelled faithfully:
//
//  1. All transport state — unacknowledged send data, receive reassembly
//     state, retransmission timers — lives inside the endpoint and is
//     frozen and captured with it (Freeze/Snapshot/Restore). A message
//     that was on the wire at snapshot time is simply lost and
//     re-transmitted after restore; an ACK that was lost causes a
//     duplicate that the receiver re-ACKs and discards.
//
//  2. The retry budget is finite. A running endpoint whose peer is frozen
//     keeps retransmitting into the void; when retries exhaust, the
//     connection resets and the application dies. This is exactly the
//     failure mode of the naive LSC coordinator when save skew exceeds
//     the retransmission budget.
package tcp

import (
	"fmt"

	"dvc/internal/payload"
	"dvc/internal/sim"
)

// Flags are TCP header control bits (the subset we model).
type Flags uint8

// Control bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

func (f Flags) Has(bit Flags) bool { return f&bit != 0 }

func (f Flags) String() string {
	s := ""
	if f.Has(FlagSYN) {
		s += "S"
	}
	if f.Has(FlagACK) {
		s += "A"
	}
	if f.Has(FlagFIN) {
		s += "F"
	}
	if f.Has(FlagRST) {
		s += "R"
	}
	if s == "" {
		return "-"
	}
	return s
}

// HeaderSize is the modelled per-segment wire overhead (IP + TCP headers).
const HeaderSize = 40

// Segment is one TCP segment. Sequence numbers are 64-bit and never wrap;
// the simulation does not move enough bytes for wrap-around to matter.
//
// Data is a zero-copy view into the sender's send queue: putting a
// segment "on the wire" (a netsim delivery record) shares the sender's
// chunks with the receiver instead of copying payload bytes. This is
// safe under the payload package's immutability contract — chunks are
// never mutated once queued, and everything runs on one kernel's event
// loop.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint64
	Flags            Flags
	Data             payload.Bytes
}

// WireSize is the segment's size on the fabric.
func (s *Segment) WireSize() int { return HeaderSize + s.Data.Len() }

func (s *Segment) String() string {
	return fmt.Sprintf("[%d->%d %s seq=%d ack=%d len=%d]",
		s.SrcPort, s.DstPort, s.Flags, s.Seq, s.Ack, s.Data.Len())
}

// Config tunes the transport. The retry budget — the sum of backed-off
// RTOs before a reset — is the quantity LSC must stay inside.
type Config struct {
	// MSS is the maximum segment payload. It is deliberately large
	// (jumbo-frame abstraction) to keep event counts manageable.
	MSS int
	// InitialRTO is the retransmission timeout before any RTT estimate.
	InitialRTO sim.Time
	// MinRTO and MaxRTO clamp the adaptive RTO.
	MinRTO, MaxRTO sim.Time
	// MaxRetries is how many consecutive retransmissions of the same
	// data are attempted before the connection resets.
	MaxRetries int
	// SendWindow bounds in-flight (unacknowledged) bytes.
	SendWindow int
}

// DefaultConfig matches a Linux 2.6-era stack tuned for a low-latency
// cluster: 200 ms minimum RTO and a retry budget of
// 0.2+0.4+0.8+1.6+3.2 ≈ 6 s (4 retries, then the fifth timeout resets).
// The paper's LSC window is this budget.
func DefaultConfig() Config {
	return Config{
		MSS:        64 << 10,
		InitialRTO: 200 * sim.Millisecond,
		MinRTO:     200 * sim.Millisecond,
		MaxRTO:     120 * sim.Second,
		MaxRetries: 4,
		SendWindow: 256 << 10,
	}
}

// RetryBudget returns the worst-case time between a peer freezing and this
// endpoint resetting an active connection: the sum of the backed-off RTOs
// starting from rto0.
func (c Config) RetryBudget(rto0 sim.Time) sim.Time {
	if rto0 < c.MinRTO {
		rto0 = c.MinRTO
	}
	var total sim.Time
	rto := rto0
	for i := 0; i <= c.MaxRetries; i++ {
		total += rto
		rto *= 2
		if rto > c.MaxRTO {
			rto = c.MaxRTO
		}
	}
	return total
}

// Errors reported through Conn.OnError.
var (
	ErrReset   = fmt.Errorf("tcp: connection reset by peer")
	ErrTimeout = fmt.Errorf("tcp: retransmission retries exhausted")
	ErrClosed  = fmt.Errorf("tcp: connection closed")
)
