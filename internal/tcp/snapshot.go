package tcp

import (
	"sort"

	"dvc/internal/netsim"
	"dvc/internal/payload"
	"dvc/internal/sim"
)

// ConnSnapshot is the pure-data image of one connection: everything a
// whole-VM checkpoint captures about a socket. Callbacks are not included;
// the guest re-registers them after restore.
type ConnSnapshot struct {
	Key   ConnKey
	State State

	SndUna, SndNxt uint64
	SendBuf        []byte
	CloseRequested bool
	FinSent        bool
	FinAcked       bool

	RcvNxt    uint64
	RecvBuf   []byte
	OOO       map[uint64][]byte
	RemoteFin bool
	FinRcvd   bool

	RTO       sim.Time
	Retries   int
	TimerLeft sim.Time // remaining retransmit timer; -1 = not armed
	SRTT      sim.Time
	RTTVar    sim.Time
	HasRTT    bool

	Retransmits uint64
	DupSegments uint64
}

// StackSnapshot is the pure-data image of a whole stack. guest.Snapshot
// reaches it (Snapshot.Stack), so it is already inside that root's
// closure; declaring it a root here too means a field added in this
// package is flagged at this declaration, not two packages away.
//
//dvc:checkpoint-root
type StackSnapshot struct {
	Addr          netsim.Addr
	Config        Config
	Conns         []ConnSnapshot
	ListenerPorts []uint16
	NextPort      uint16
	Resets        uint64
	SegmentsSent  uint64
	SegmentsRcvd  uint64
}

// Snapshot captures the stack. The stack must be frozen first — capturing
// a running stack would race with its own timers, which is exactly the
// inconsistency LSC exists to avoid — and this method panics otherwise.
func (s *Stack) Snapshot() *StackSnapshot {
	if !s.frozen {
		panic("tcp: Snapshot of a stack that is not frozen")
	}
	snap := &StackSnapshot{
		Addr:         s.addr,
		Config:       s.cfg,
		NextPort:     s.nextPort,
		Resets:       s.resets,
		SegmentsSent: s.SegmentsSent,
		SegmentsRcvd: s.SegmentsRcvd,
	}
	ports := make([]uint16, 0, len(s.listeners))
	for port := range s.listeners {
		ports = append(ports, port)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	snap.ListenerPorts = ports
	for _, c := range s.Conns() {
		// The queues flatten here — the checkpoint boundary — into
		// fresh contiguous buffers. On the hot path segments and reads
		// are zero-copy views over shared chunks; an image, by
		// contrast, must not alias live simulation state (it outlives
		// the connection and may be restored on another node), so this
		// is the one place the send/receive queues are copied.
		cs := ConnSnapshot{
			Key:            c.key,
			State:          c.state,
			SndUna:         c.sndUna,
			SndNxt:         c.sndNxt,
			SendBuf:        c.sendQ.copyOut(),
			CloseRequested: c.closeRequested,
			FinSent:        c.finSent,
			FinAcked:       c.finAcked,
			RcvNxt:         c.rcvNxt,
			RecvBuf:        c.recvQ.copyOut(),
			RemoteFin:      c.remoteFin,
			FinRcvd:        c.finRcvd,
			RTO:            c.rto,
			Retries:        c.retries,
			TimerLeft:      c.timerLeft,
			SRTT:           c.srtt,
			RTTVar:         c.rttvar,
			HasRTT:         c.hasRTT,
			Retransmits:    c.Retransmits,
			DupSegments:    c.DupSegments,
		}
		if len(c.ooo) > 0 {
			cs.OOO = make(map[uint64][]byte, len(c.ooo))
			seqs := make([]uint64, 0, len(c.ooo))
			for seq := range c.ooo {
				seqs = append(seqs, seq)
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			for _, seq := range seqs {
				data := c.ooo[seq]
				cs.OOO[seq] = data.AppendTo(make([]byte, 0, data.Len()))
			}
		}
		snap.Conns = append(snap.Conns, cs)
	}
	return snap
}

// RestoreStack rebuilds a stack from a snapshot in the frozen state. The
// caller thaws it once the VM resumes. The restored stack binds to the
// snapshot's address on the given fabric — which may now route to a
// different physical node (migration).
func RestoreStack(k *sim.Kernel, fabric *netsim.Fabric, snap *StackSnapshot) *Stack {
	s := NewStack(k, fabric, snap.Addr, snap.Config)
	s.frozen = true
	s.nextPort = snap.NextPort
	s.resets = snap.Resets
	s.SegmentsSent = snap.SegmentsSent
	s.SegmentsRcvd = snap.SegmentsRcvd
	for _, port := range snap.ListenerPorts {
		s.listeners[port] = &Listener{Port: port}
	}
	for _, cs := range snap.Conns {
		c := &Conn{
			stack:          s,
			key:            cs.Key,
			state:          cs.State,
			sndUna:         cs.SndUna,
			sndNxt:         cs.SndNxt,
			closeRequested: cs.CloseRequested,
			finSent:        cs.FinSent,
			finAcked:       cs.FinAcked,
			rcvNxt:         cs.RcvNxt,
			remoteFin:      cs.RemoteFin,
			finRcvd:        cs.FinRcvd,
			rto:            cs.RTO,
			retries:        cs.Retries,
			timerLeft:      cs.TimerLeft,
			srtt:           cs.SRTT,
			rttvar:         cs.RTTVar,
			hasRTT:         cs.HasRTT,
			Retransmits:    cs.Retransmits,
			DupSegments:    cs.DupSegments,
		}
		// The snapshot's buffers enter the restored queues by reference
		// (single-chunk ropes): Snapshot already produced fresh copies,
		// and snapshots are pure data under the payload immutability
		// contract — the same image can even be restored repeatedly,
		// since the queues only ever read the shared chunks.
		c.sendQ.push(payload.Wrap(cs.SendBuf))
		c.recvQ.push(payload.Wrap(cs.RecvBuf))
		if len(cs.OOO) > 0 {
			c.ooo = make(map[uint64]payload.Bytes, len(cs.OOO))
			seqs := make([]uint64, 0, len(cs.OOO))
			for seq := range cs.OOO {
				seqs = append(seqs, seq)
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			for _, seq := range seqs {
				c.ooo[seq] = payload.Wrap(cs.OOO[seq])
				c.oooBytes += len(cs.OOO[seq])
			}
		}
		s.conns[c.key] = c
	}
	return s
}

// SetListenerAccept re-registers the accept callback for a restored
// listener port.
func (s *Stack) SetListenerAccept(port uint16, onAccept func(*Conn)) {
	if l, ok := s.listeners[port]; ok {
		l.OnAccept = onAccept
	}
}
