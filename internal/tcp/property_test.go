package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

// TestPropertyEventualDeliveryUnderLoss: for any loss rate up to 20% and
// any payload, the stream arrives intact and in order, exactly once.
func TestPropertyEventualDeliveryUnderLoss(t *testing.T) {
	f := func(seed int64, lossPct uint8, sizeRaw uint16) bool {
		loss := float64(lossPct%21) / 100 // 0..20%
		size := int(sizeRaw)%30000 + 1
		k := sim.NewKernel(seed)
		fab := netsim.NewFabric(k)
		fab.AddCluster("c", netsim.LinkProfile{
			Latency:   55 * sim.Microsecond,
			Bandwidth: 117e6,
			LossProb:  loss,
		})
		cfg := DefaultConfig()
		cfg.MSS = 1000
		cfg.SendWindow = 4000
		// Generous retries: heavy loss must delay, never corrupt.
		cfg.MaxRetries = 30
		sa := NewStack(k, fab, "A", cfg)
		sb := NewStack(k, fab, "B", cfg)
		fab.Attach("A", "c", sa.Deliver)
		fab.Attach("B", "c", sb.Deliver)
		var cb *Conn
		sb.Listen(1, func(c *Conn) { cb = c })
		ca := sa.Connect("B", 1)
		k.RunFor(time2(30))
		if ca.State() != StateEstablished || cb == nil {
			return loss > 0.15 // heavy loss may legitimately stall the handshake budget
		}
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		ca.Write(msg)
		var got []byte
		deadline := k.Now() + 10*sim.Minute
		for len(got) < size && k.Now() < deadline {
			k.RunFor(sim.Second)
			got = append(got, cb.Read(cb.Readable())...)
		}
		return bytes.Equal(got, msg) && cb.Readable() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func time2(s int) sim.Time { return sim.Time(s) * sim.Second }

// TestPropertyFreezeAnywhereIsSafe: freezing and thawing both endpoints
// at an arbitrary instant mid-transfer never corrupts or duplicates the
// stream — the LSC core property, for random cut points.
func TestPropertyFreezeAnywhereIsSafe(t *testing.T) {
	f := func(seed int64, cutMicros uint16, pause uint8) bool {
		k := sim.NewKernel(seed)
		fab := netsim.NewFabric(k)
		fab.AddCluster("c", netsim.EthernetGigE())
		cfg := DefaultConfig()
		cfg.MSS = 1200
		cfg.SendWindow = 6000
		sa := NewStack(k, fab, "A", cfg)
		sb := NewStack(k, fab, "B", cfg)
		pa := fab.Attach("A", "c", sa.Deliver)
		pb := fab.Attach("B", "c", sb.Deliver)
		var cb *Conn
		sb.Listen(1, func(c *Conn) { cb = c })
		ca := sa.Connect("B", 1)
		k.RunFor(sim.Second)

		msg := make([]byte, 40000)
		for i := range msg {
			msg[i] = byte(i * 13)
		}
		ca.Write(msg)
		var got []byte
		drainB := func() {
			if cb != nil {
				got = append(got, cb.Read(cb.Readable())...)
			}
		}
		// Cut at a random instant inside the transfer window.
		k.RunFor(sim.Time(cutMicros) * sim.Microsecond)
		drainB()
		sa.Freeze()
		sb.Freeze()
		pa.SetUp(false)
		pb.SetUp(false)
		// Pause 0..255 seconds: far beyond any timer, none may fire.
		k.RunFor(sim.Time(pause) * sim.Second)
		pa.SetUp(true)
		pb.SetUp(true)
		sa.Thaw()
		sb.Thaw()

		deadline := k.Now() + 10*sim.Minute
		for len(got) < len(msg) && k.Now() < deadline {
			k.RunFor(sim.Second)
			drainB()
		}
		return bytes.Equal(got, msg) &&
			ca.State() == StateEstablished && cb.State() == StateEstablished
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySnapshotRoundTripEquivalence: snapshotting and restoring a
// frozen stack yields identical behaviour to thawing the original — the
// stream completes intact either way.
func TestPropertySnapshotRoundTripEquivalence(t *testing.T) {
	f := func(seed int64, cutMicros uint16) bool {
		k := sim.NewKernel(seed)
		fab := netsim.NewFabric(k)
		fab.AddCluster("c", netsim.EthernetGigE())
		cfg := DefaultConfig()
		cfg.MSS = 900
		sa := NewStack(k, fab, "A", cfg)
		sb := NewStack(k, fab, "B", cfg)
		pa := fab.Attach("A", "c", sa.Deliver)
		pb := fab.Attach("B", "c", sb.Deliver)
		var cb *Conn
		sb.Listen(1, func(c *Conn) { cb = c })
		ca := sa.Connect("B", 1)
		k.RunFor(sim.Second)
		msg := make([]byte, 20000)
		for i := range msg {
			msg[i] = byte(i)
		}
		ca.Write(msg)
		k.RunFor(sim.Time(cutMicros) * sim.Microsecond)
		var got []byte
		if cb != nil {
			got = append(got, cb.Read(cb.Readable())...)
		}

		sa.Freeze()
		sb.Freeze()
		pa.SetUp(false)
		pb.SetUp(false)
		snapA, snapB := sa.Snapshot(), sb.Snapshot()
		pa.Detach()
		pb.Detach()
		k.RunFor(sim.Minute)
		sa2 := RestoreStack(k, fab, snapA)
		sb2 := RestoreStack(k, fab, snapB)
		fab.Attach("A", "c", sa2.Deliver)
		fab.Attach("B", "c", sb2.Deliver)
		sa2.Thaw()
		sb2.Thaw()
		cb2 := sb2.Conns()[0]
		deadline := k.Now() + 10*sim.Minute
		for len(got) < len(msg) && k.Now() < deadline {
			k.RunFor(sim.Second)
			got = append(got, cb2.Read(cb2.Readable())...)
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
