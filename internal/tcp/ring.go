package tcp

import (
	"fmt"

	"dvc/internal/payload"
)

// chunkRing is a FIFO byte queue over shared chunk references — the
// backing structure for a connection's send and receive queues. It
// replaces the old append-and-reslice []byte buffers, which had two
// costs the data plane could not afford:
//
//   - every enqueued byte was copied into the buffer's backing array
//     (append), and
//   - consuming from the front (buf = buf[n:]) kept the full backing
//     array reachable for the connection's lifetime, so a connection
//     that once moved a large transfer pinned that much memory forever.
//
// The ring stores chunk *descriptors* in a circular array. Enqueued
// ropes contribute their chunks by reference (no byte copy); consumed
// chunks have their slots nil'ed so the backing arrays become
// collectable as soon as the data is acknowledged (send side) or read
// (receive side). Byte offsets into the queue — the currency of TCP
// sequence arithmetic — are resolved by walking descriptors, which is
// cheap because chunks are segment-sized or larger.
//
// Chunks obey the payload package's immutability contract: the ring
// never writes into a chunk, so its views can be shared with in-flight
// segments, the peer's reassembly state, and the application at once.
type chunkRing struct {
	chunks  [][]byte // circular descriptor array (len is a power of two once grown)
	head    int      // index of the first live chunk
	n       int      // number of live chunks
	headOff int      // bytes of the head chunk already consumed
	size    int      // total readable bytes
}

// len returns the number of readable bytes queued.
func (r *chunkRing) len() int { return r.size }

// at returns the k-th live chunk (0 = head).
func (r *chunkRing) at(k int) []byte { return r.chunks[(r.head+k)%len(r.chunks)] }

// push appends a rope's chunks to the tail by reference.
//
//dvc:hotpath
func (r *chunkRing) push(b payload.Bytes) {
	for _, c := range b.Chunks() {
		r.pushChunk(c)
	}
}

// pushChunk appends one chunk to the tail by reference (empty chunks
// are ignored).
//
//dvc:hotpath
func (r *chunkRing) pushChunk(c []byte) {
	if len(c) == 0 {
		return
	}
	if r.n == len(r.chunks) {
		r.grow()
	}
	r.chunks[(r.head+r.n)%len(r.chunks)] = c
	r.n++
	r.size += len(c)
}

// grow doubles the descriptor array, compacting live descriptors to the
// front. Descriptor slots are pointers-and-lengths, not data: even a
// long queue costs a few hundred bytes of descriptor space.
//
//dvc:hotpath
func (r *chunkRing) grow() {
	newCap := 2 * len(r.chunks)
	if newCap == 0 {
		newCap = 8
	}
	//lint:allow noalloc amortized descriptor-array doubling; data chunks are never copied
	fresh := make([][]byte, newCap)
	for i := 0; i < r.n; i++ {
		fresh[i] = r.at(i)
	}
	r.chunks = fresh
	r.head = 0
}

// view returns the byte range [off, off+n) of the queue as a zero-copy
// rope over the ring's chunks. It panics on an out-of-range request —
// callers derive off/n from sequence arithmetic, so a bad range is a
// protocol-logic bug, not an I/O condition.
//
//dvc:hotpath
func (r *chunkRing) view(off, n int) payload.Bytes {
	if off < 0 || n < 0 || off+n > r.size {
		panic(fmt.Sprintf("tcp: ring view [%d,%d) of %d bytes", off, off+n, r.size))
	}
	if n == 0 {
		return payload.Bytes{}
	}
	off += r.headOff
	k := 0
	for {
		c := r.at(k)
		if off < len(c) {
			break
		}
		off -= len(c)
		k++
	}
	c := r.at(k)
	if off+n <= len(c) {
		// Single-chunk fast path: the common case, since chunks are
		// message- or segment-sized.
		return payload.Wrap(c[off : off+n : off+n])
	}
	//lint:allow noalloc multi-chunk slow path only; the single-chunk fast path above is allocation-free
	parts := make([][]byte, 0, 4)
	parts = append(parts, c[off:len(c):len(c)]) //lint:allow noalloc slow path; usually fits the 4-descriptor pre-size
	n -= len(c) - off
	for k++; n > 0; k++ {
		c = r.at(k)
		take := n
		if take > len(c) {
			take = len(c)
		}
		parts = append(parts, c[:take:take]) //lint:allow noalloc slow path; usually fits the 4-descriptor pre-size
		n -= take
	}
	return payload.FromChunks(parts...)
}

// consume drops n bytes from the front of the queue. Fully consumed
// chunks have their descriptor slots nil'ed so the ring stops keeping
// their backing arrays alive — the fix for the reslice-pinning bug the
// old []byte buffers had.
//
//dvc:hotpath
func (r *chunkRing) consume(n int) {
	if n < 0 || n > r.size {
		panic(fmt.Sprintf("tcp: ring consume %d of %d bytes", n, r.size))
	}
	r.size -= n
	for n > 0 {
		c := r.chunks[r.head]
		avail := len(c) - r.headOff
		if n < avail {
			r.headOff += n
			return
		}
		n -= avail
		r.chunks[r.head] = nil // release the backing array
		r.head = (r.head + 1) % len(r.chunks)
		r.n--
		r.headOff = 0
	}
	if r.n == 0 {
		r.head, r.headOff = 0, 0
	}
}

// copyOut returns a fresh contiguous copy of the whole queue — the
// checkpoint boundary, where images must not alias live simulation
// state.
func (r *chunkRing) copyOut() []byte {
	out := make([]byte, r.size)
	off := 0
	for k := 0; k < r.n; k++ {
		c := r.at(k)
		if k == 0 {
			c = c[r.headOff:]
		}
		off += copy(out[off:], c)
	}
	return out
}

// retainedBytes reports how many bytes of chunk backing the ring keeps
// alive (including the consumed prefix of the head chunk). Used by the
// memory-retention regression test.
func (r *chunkRing) retainedBytes() int {
	total := 0
	for k := 0; k < r.n; k++ {
		total += len(r.at(k))
	}
	return total
}
