package tcp

import (
	"fmt"
	"sort"

	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/sim"
)

// Stats are diagnostic data-plane counters. Unlike SegmentsSent/Rcvd
// and the per-connection counters captured in StackSnapshot, Stats
// deliberately stays OUT of the checkpoint image: adding fields here
// must not change the gob encoding (and hence the byte size) of saved
// VM images. Like the tracer, it is host-side observability that does
// not travel with snapshots.
type Stats struct {
	// OOODroppedBytes counts payload bytes of out-of-order segments
	// rejected because they ended beyond the receive window
	// (rcvNxt + SendWindow; this symmetric stack advertises its send
	// window as its receive window). An honest go-back-N peer never
	// triggers this — its unacknowledged span can only trail our
	// rcvNxt — so a non-zero count indicates a buggy or hostile peer.
	OOODroppedBytes uint64
}

// Listener accepts incoming connections on a local port.
type Listener struct {
	Port uint16
	// OnAccept fires when an incoming connection reaches Established.
	OnAccept func(*Conn)
}

// Stack is one endpoint's TCP implementation, bound to a fabric address.
// A guest OS owns exactly one stack; pausing the guest freezes the stack.
type Stack struct {
	kernel *sim.Kernel
	fabric *netsim.Fabric
	addr   netsim.Addr
	cfg    Config

	conns     map[ConnKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
	frozen    bool
	resets    uint64

	// Observability. The tracer is not part of the snapshot: the owner
	// (vm/rm layer) re-attaches it after a restore, exactly like the
	// connection callbacks.
	tracer *obs.Tracer
	trNode string // hosting physical node id
	trDom  string // owning VM/domain name ("" for a native host stack)

	// SegmentsSent/SegmentsRcvd count transport activity for experiments.
	SegmentsSent uint64
	SegmentsRcvd uint64

	// Stats holds diagnostic counters that do not travel with snapshots
	// (see the Stats type).
	Stats Stats
}

// NewStack creates a stack bound to addr on the fabric. The caller is
// responsible for attaching a port for addr and routing its packets to
// Deliver (the vm/guest layer does this so it can interpose pause
// semantics).
func NewStack(k *sim.Kernel, fabric *netsim.Fabric, addr netsim.Addr, cfg Config) *Stack {
	return &Stack{
		kernel:    k,
		fabric:    fabric,
		addr:      addr,
		cfg:       cfg,
		conns:     make(map[ConnKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  49152,
	}
}

// Addr returns the stack's fabric address.
func (s *Stack) Addr() netsim.Addr { return s.addr }

// Config returns the stack's transport configuration.
func (s *Stack) Config() Config { return s.cfg }

// Resets reports how many connections have been reset (either side).
func (s *Stack) Resets() uint64 { return s.resets }

// Frozen reports whether the stack is currently frozen.
func (s *Stack) Frozen() bool { return s.frozen }

// SetTracer attaches an observability tracer and this stack's identity on
// the trace timeline (node = hosting physical node, dom = VM name). A nil
// tracer disables tracing. Like connection callbacks, the tracer does not
// travel with snapshots — the restoring owner re-attaches it.
func (s *Stack) SetTracer(t *obs.Tracer, node, dom string) {
	s.tracer = t
	s.trNode = node
	s.trDom = dom
}

// Listen registers a listener on port. It panics on a duplicate listen:
// port allocation is static in this simulation.
func (s *Stack) Listen(port uint16, onAccept func(*Conn)) *Listener {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("tcp: duplicate listen on %s:%d", s.addr, port))
	}
	l := &Listener{Port: port, OnAccept: onAccept}
	s.listeners[port] = l
	return l
}

// Connect initiates a connection to raddr:rport from an ephemeral local
// port. The returned Conn is in SynSent; OnEstablished fires when the
// handshake completes.
func (s *Stack) Connect(raddr netsim.Addr, rport uint16) *Conn {
	lport := s.allocPort()
	key := ConnKey{LocalPort: lport, RemoteAddr: raddr, RemotePort: rport}
	c := &Conn{
		stack:     s,
		key:       key,
		state:     StateSynSent,
		rto:       s.cfg.InitialRTO,
		timerLeft: -1,
	}
	s.conns[key] = c
	c.sendSegment(&Segment{Flags: FlagSYN, Seq: 0})
	c.armTimer(c.rto)
	return c
}

func (s *Stack) allocPort() uint16 {
	for {
		p := s.nextPort
		s.nextPort++
		if s.nextPort < 49152 {
			s.nextPort = 49152
		}
		inUse := false
		for k := range s.conns {
			if k.LocalPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}

// Conns returns the live connections in deterministic (key-sorted) order.
func (s *Stack) Conns() []*Conn {
	keys := make([]ConnKey, 0, len(s.conns))
	for k := range s.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	out := make([]*Conn, len(keys))
	for i, k := range keys {
		out[i] = s.conns[k]
	}
	return out
}

// Lookup finds a connection by key.
func (s *Stack) Lookup(key ConnKey) (*Conn, bool) {
	c, ok := s.conns[key]
	return c, ok
}

// Drop removes a closed/reset connection from the table.
func (s *Stack) Drop(key ConnKey) { delete(s.conns, key) }

func lessKey(a, b ConnKey) bool {
	if a.LocalPort != b.LocalPort {
		return a.LocalPort < b.LocalPort
	}
	if a.RemoteAddr != b.RemoteAddr {
		return a.RemoteAddr < b.RemoteAddr
	}
	return a.RemotePort < b.RemotePort
}

// transmit puts a segment on the fabric. Frozen stacks cannot transmit;
// that can only happen from a stale event and is silently dropped (the
// wire would drop it anyway).
func (s *Stack) transmit(dst netsim.Addr, seg *Segment) {
	if s.frozen {
		return
	}
	s.SegmentsSent++
	s.fabric.Send(netsim.Packet{Src: s.addr, Dst: dst, Size: seg.WireSize(), Payload: seg})
}

// Deliver feeds an incoming packet into the stack. The owner wires the
// netsim port's handler to this method.
func (s *Stack) Deliver(pkt netsim.Packet) {
	if s.frozen {
		return // paused guest: lost on the wire
	}
	seg, ok := pkt.Payload.(*Segment)
	if !ok {
		return
	}
	s.SegmentsRcvd++
	key := ConnKey{LocalPort: seg.DstPort, RemoteAddr: pkt.Src, RemotePort: seg.SrcPort}
	if c, ok := s.conns[key]; ok {
		c.handle(seg)
		return
	}
	// No connection: a SYN to a listening port creates one.
	if seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
		if _, listening := s.listeners[seg.DstPort]; listening {
			c := &Conn{
				stack:     s,
				key:       key,
				state:     StateSynRcvd,
				rcvNxt:    1,
				rto:       s.cfg.InitialRTO,
				timerLeft: -1,
			}
			s.conns[key] = c
			c.sendSegment(&Segment{Flags: FlagSYN | FlagACK, Seq: 0, Ack: 1})
			c.armTimer(c.rto)
			return
		}
	}
	// Segment for a dead connection: answer with RST unless it is an RST.
	if !seg.Flags.Has(FlagRST) {
		s.SegmentsSent++
		s.fabric.Send(netsim.Packet{Src: s.addr, Dst: pkt.Src, Size: HeaderSize, Payload: &Segment{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort, Flags: FlagRST, Seq: seg.Ack, Ack: seg.Seq,
		}})
	}
}

// Freeze suspends the stack: retransmission timers stop (their remainders
// are recorded) and traffic is neither sent nor received. This is the
// transport half of a Xen "vm pause".
func (s *Stack) Freeze() {
	if s.frozen {
		return
	}
	s.frozen = true
	// Sorted order: freeze cancels retransmission timers, and cancelling
	// kernel events in randomized map order would perturb replay
	// (dvclint: mapiter).
	for _, c := range s.Conns() {
		c.freeze()
	}
}

// Thaw resumes a frozen stack, re-arming timers from their remainders.
func (s *Stack) Thaw() {
	if !s.frozen {
		return
	}
	s.frozen = false
	// Sorted order: thaw re-arms timers, i.e. schedules kernel events,
	// whose sequence numbers must not depend on map order.
	for _, c := range s.Conns() {
		c.thaw()
	}
}
