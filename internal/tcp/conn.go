package tcp

import (
	"fmt"

	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/payload"
	"dvc/internal/sim"
)

// State is a connection's lifecycle state.
type State int

// Connection states (a condensed version of the TCP state machine; the
// TIME_WAIT family is collapsed into Closed).
const (
	StateSynSent State = iota
	StateSynRcvd
	StateEstablished
	StateClosing // FIN sent or received, not yet fully closed
	StateClosed
	StateReset
)

func (s State) String() string {
	switch s {
	case StateSynSent:
		return "SynSent"
	case StateSynRcvd:
		return "SynRcvd"
	case StateEstablished:
		return "Established"
	case StateClosing:
		return "Closing"
	case StateClosed:
		return "Closed"
	case StateReset:
		return "Reset"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ConnKey uniquely identifies a connection at one endpoint.
type ConnKey struct {
	LocalPort  uint16
	RemoteAddr netsim.Addr
	RemotePort uint16
}

func (k ConnKey) String() string {
	return fmt.Sprintf(":%d<->%s:%d", k.LocalPort, k.RemoteAddr, k.RemotePort)
}

// Conn is one endpoint of a connection. All methods must be called from
// simulation context (never concurrently).
//
// Callbacks (OnReadable, OnEstablished, OnError) are not part of the
// snapshot; the owner re-registers them after a restore.
type Conn struct {
	stack *Stack
	key   ConnKey
	state State

	// Send side. sendQ holds bytes [sndUna, sndUna+len) — both unacked
	// and not-yet-transmitted data — as shared chunk references;
	// segments carry zero-copy views into it, and ACK consumption
	// releases chunk backing arrays instead of pinning them.
	sndUna, sndNxt uint64
	sendQ          chunkRing
	closeRequested bool
	finSent        bool
	finAcked       bool

	// Receive side. recvQ accumulates in-order segment payloads by
	// reference (the chunks are the sender's own send-queue chunks,
	// shared across the simulated wire); ooo stashes out-of-order
	// segment views, bounded by the receive window (== SendWindow in
	// this symmetric stack), with rejected bytes counted in
	// Stack.Stats.OOODroppedBytes.
	rcvNxt    uint64
	recvQ     chunkRing
	ooo       map[uint64]payload.Bytes // out-of-order segments keyed by seq
	oooBytes  int                      // total bytes stashed in ooo
	remoteFin bool
	finRcvd   bool // FIN consumed into rcvNxt

	// Retransmission. The RTO timer is a rearmable sim.Timer: every ACK
	// rearms it in place (Reset) instead of cancelling and reallocating a
	// kernel event — the per-segment hot path allocates nothing.
	rto        sim.Time
	retries    int
	timer      *sim.Timer
	timerLeft  sim.Time // remaining time while frozen; -1 when no timer
	srtt       sim.Time
	rttvar     sim.Time
	hasRTT     bool
	rttSeq     uint64   // segment end being timed (0 = none)
	rttSentAt  sim.Time // when it was sent
	retransHit bool     // Karn: a retransmission invalidates the sample

	// Counters for experiments.
	Retransmits uint64
	DupSegments uint64

	// Callbacks, owned by the guest layer.
	OnReadable    func()
	OnEstablished func()
	OnError       func(error)
	OnAck         func() // fires when sndUna advances (send progress)
}

// Key returns the connection's demux key.
func (c *Conn) Key() ConnKey { return c.key }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// RemoteAddr returns the peer's fabric address.
func (c *Conn) RemoteAddr() netsim.Addr { return c.key.RemoteAddr }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() sim.Time { return c.rto }

// Write queues data for transmission without copying it: the slice's
// chunks enter the send queue by reference, so the caller hands over
// visibility of data under the payload package's immutability contract
// (build a fresh buffer per message; never mutate it afterwards). Write
// never blocks; the guest layer is responsible for modelling
// back-pressure via SendBacklog.
func (c *Conn) Write(data []byte) error {
	return c.WritePayload(payload.Wrap(data))
}

// WritePayload queues a rope for transmission by reference — the
// zero-copy entry point the mpi framing layer uses to send
// header+body messages without materialising the frame.
func (c *Conn) WritePayload(p payload.Bytes) error {
	switch c.state {
	case StateReset:
		return ErrReset
	case StateClosed:
		return ErrClosed
	}
	if c.closeRequested {
		return ErrClosed
	}
	c.sendQ.push(p)
	c.trySend()
	return nil
}

// SendBacklog reports bytes queued but not yet acknowledged.
func (c *Conn) SendBacklog() int { return c.sendQ.len() }

// Readable reports how many bytes are ready for the application.
func (c *Conn) Readable() int { return c.recvQ.len() }

// EOF reports whether the peer has closed its direction and all data has
// been drained.
func (c *Conn) EOF() bool { return c.finRcvd && c.recvQ.len() == 0 }

// Read consumes up to n bytes from the receive queue as a contiguous
// slice, flattening across segment boundaries if the range spans
// multiple received chunks (the application-delivery copy — the only
// one left on the receive path).
func (c *Conn) Read(n int) []byte {
	return c.ReadPayload(n).Flatten()
}

// ReadPayload consumes up to n bytes from the receive queue as a
// zero-copy rope over the received chunks.
func (c *Conn) ReadPayload(n int) payload.Bytes {
	if n > c.recvQ.len() {
		n = c.recvQ.len()
	}
	out := c.recvQ.view(0, n)
	c.recvQ.consume(n)
	return out
}

// Close requests a graceful close: remaining data is sent, then FIN.
func (c *Conn) Close() {
	if c.closeRequested || c.state == StateClosed || c.state == StateReset {
		return
	}
	c.closeRequested = true
	c.trySend()
}

// Abort sends RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed || c.state == StateReset {
		return
	}
	c.sendSegment(&Segment{Flags: FlagRST, Seq: c.sndNxt, Ack: c.rcvNxt})
	c.teardown(StateClosed, nil)
}

// --- internals ---

func (c *Conn) now() sim.Time { return c.stack.kernel.Now() }

func (c *Conn) sendSegment(seg *Segment) {
	seg.SrcPort = c.key.LocalPort
	seg.DstPort = c.key.RemotePort
	c.stack.transmit(c.key.RemoteAddr, seg)
}

// trySend pushes new data/FIN within the send window and manages the
// retransmit timer.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateClosing {
		return
	}
	inFlight := func() int { return int(c.sndNxt - c.sndUna) }
	sent := false
	for {
		unsent := int(c.sndUna) + c.sendQ.len() - int(c.sndNxt)
		if unsent <= 0 || inFlight() >= c.stack.cfg.SendWindow {
			break
		}
		n := unsent
		if n > c.stack.cfg.MSS {
			n = c.stack.cfg.MSS
		}
		if room := c.stack.cfg.SendWindow - inFlight(); n > room {
			n = room
		}
		off := int(c.sndNxt - c.sndUna)
		data := c.sendQ.view(off, n)
		seg := &Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Data: data}
		// Time this segment for RTT if nothing is being timed.
		if c.rttSeq == 0 {
			c.rttSeq = c.sndNxt + uint64(n)
			c.rttSentAt = c.now()
			c.retransHit = false
		}
		c.sendSegment(seg)
		c.sndNxt += uint64(n)
		sent = true
	}
	// FIN once everything queued has been transmitted.
	if c.closeRequested && !c.finSent && int(c.sndNxt-c.sndUna) == c.sendQ.len() {
		c.sendSegment(&Segment{Flags: FlagFIN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
		c.sndNxt++
		c.finSent = true
		if c.state == StateEstablished {
			c.state = StateClosing
		}
		sent = true
	}
	if sent && !c.timer.Pending() {
		c.armTimer(c.rto)
	}
}

func (c *Conn) armTimer(d sim.Time) {
	if c.timer == nil {
		c.timer = sim.NewTimer(c.stack.kernel, c.onTimeout)
	}
	c.timer.Reset(d)
}

func (c *Conn) stopTimer() {
	c.timer.Stop()
	c.timerLeft = -1
}

// onTimeout is the retransmission timer: back off, resend the earliest
// outstanding segment, and reset the connection when the budget is gone.
func (c *Conn) onTimeout() {
	if c.outstanding() == 0 {
		return
	}
	c.retries++
	if c.retries > c.stack.cfg.MaxRetries {
		c.sendSegment(&Segment{Flags: FlagRST, Seq: c.sndNxt, Ack: c.rcvNxt})
		c.teardown(StateReset, ErrTimeout)
		return
	}
	c.Retransmits++
	c.retransHit = true
	c.rto *= 2
	if c.rto > c.stack.cfg.MaxRTO {
		c.rto = c.stack.cfg.MaxRTO
	}
	if tr := c.stack.tracer; tr != nil {
		now := c.now()
		tr.Emit(now, obs.EvTCPRetransmit, c.stack.trNode, c.stack.trDom, "rexmit",
			obs.Str("conn", c.key.String()), obs.Int("retry", int64(c.retries)))
		tr.Emit(now, obs.EvTCPRTOBackoff, c.stack.trNode, c.stack.trDom, "rto-backoff",
			obs.Str("conn", c.key.String()), obs.Dur("rto", c.rto))
		tr.Inc("tcp.retransmits", 1)
		tr.Observe("tcp.rto_ms", float64(c.rto)/1e6)
	}
	c.retransmitHead()
	c.armTimer(c.rto)
}

// outstanding reports unacknowledged sequence space (data + SYN/FIN).
func (c *Conn) outstanding() uint64 {
	if c.state == StateSynSent || c.state == StateSynRcvd {
		return 1
	}
	return c.sndNxt - c.sndUna
}

// retransmitHead resends the earliest unacknowledged unit and collapses
// the send window to it (go-back-N): a timeout usually means the whole
// in-flight window is gone, so the rest is re-sent by trySend as ACKs
// come back — one window per RTT instead of one segment per RTO.
func (c *Conn) retransmitHead() {
	switch c.state {
	case StateSynSent:
		c.sendSegment(&Segment{Flags: FlagSYN, Seq: 0})
		return
	case StateSynRcvd:
		c.sendSegment(&Segment{Flags: FlagSYN | FlagACK, Seq: 0, Ack: c.rcvNxt})
		return
	}
	dataLen := c.sendQ.len()
	if dataLen > 0 && c.sndNxt > c.sndUna {
		// Resend first segment of unacked data.
		n := dataLen
		if n > c.stack.cfg.MSS {
			n = c.stack.cfg.MSS
		}
		if avail := int(c.sndNxt - c.sndUna); n > avail {
			n = avail
		}
		if n > 0 {
			seg := &Segment{Flags: FlagACK, Seq: c.sndUna, Ack: c.rcvNxt, Data: c.sendQ.view(0, n)}
			c.sendSegment(seg)
			// Go-back-N: anything beyond the head is presumed lost and
			// will be re-sent by trySend; a previously sent FIN moves
			// back with it.
			if back := c.sndUna + uint64(n); c.sndNxt > back {
				c.sndNxt = back
				if c.finSent && !c.finAcked {
					c.finSent = false
					if c.state == StateClosing && !c.finRcvd {
						c.state = StateEstablished
					}
				}
			}
			return
		}
	}
	if c.finSent && !c.finAcked {
		c.sendSegment(&Segment{Flags: FlagFIN | FlagACK, Seq: c.sndNxt - 1, Ack: c.rcvNxt})
	}
}

// handle processes an incoming segment addressed to this connection.
func (c *Conn) handle(seg *Segment) {
	if seg.Flags.Has(FlagRST) {
		c.teardown(StateReset, ErrReset)
		return
	}
	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(FlagSYN) && seg.Flags.Has(FlagACK) {
			c.state = StateEstablished
			c.sndUna, c.sndNxt = 1, 1
			c.rcvNxt = 1
			c.retries = 0
			c.stopTimer()
			// Pure ACK completes the handshake.
			c.sendSegment(&Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			c.trySend()
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
			// Duplicate SYN: our SYN|ACK was lost.
			c.sendSegment(&Segment{Flags: FlagSYN | FlagACK, Seq: 0, Ack: c.rcvNxt})
			return
		}
		if seg.Flags.Has(FlagACK) && seg.Ack >= 1 {
			c.state = StateEstablished
			c.sndUna, c.sndNxt = 1, 1
			c.retries = 0
			c.stopTimer()
			if l := c.stack.listeners[c.key.LocalPort]; l != nil && l.OnAccept != nil {
				l.OnAccept(c)
			}
			// Fall through to process any data riding on this segment.
		} else {
			return
		}
	case StateClosed, StateReset:
		c.sendSegment(&Segment{Flags: FlagRST, Seq: c.sndNxt, Ack: c.rcvNxt})
		return
	}

	if seg.Flags.Has(FlagSYN) {
		// A retransmitted SYN|ACK reaching an established connection
		// means our final handshake ACK was lost: re-ACK so the peer can
		// leave SynRcvd.
		c.sendAck()
		return
	}
	if seg.Flags.Has(FlagACK) {
		c.processAck(seg.Ack)
	}
	if seg.Data.Len() > 0 {
		c.processData(seg)
	}
	if seg.Flags.Has(FlagFIN) {
		c.processFin(seg)
	}
}

func (c *Conn) processAck(ack uint64) {
	if ack <= c.sndUna {
		return
	}
	if ack > c.sndNxt {
		ack = c.sndNxt // peer acking beyond what we sent: clamp
	}
	advanced := ack - c.sndUna
	// Consume acked bytes from the buffer. The FIN occupies sequence
	// space but no buffer space.
	bufAdvance := advanced
	if c.finSent && ack == c.sndNxt {
		c.finAcked = true
		if bufAdvance > 0 {
			bufAdvance--
		}
	}
	if int(bufAdvance) > c.sendQ.len() {
		bufAdvance = uint64(c.sendQ.len())
	}
	// Acked bytes leave the queue; fully consumed chunks release their
	// backing arrays (no reslice-pinning).
	c.sendQ.consume(int(bufAdvance))
	c.sndUna = ack
	c.retries = 0

	// RTT sample (Karn's algorithm: skip if a retransmission happened).
	if c.rttSeq != 0 && ack >= c.rttSeq {
		if !c.retransHit {
			c.rttSample(c.now() - c.rttSentAt)
		}
		c.rttSeq = 0
	}
	// New progress collapses any backed-off RTO to the estimate again
	// (real stacks recompute RTO from srtt/rttvar on each ACK; without
	// this, one burst of timeouts leaves the timer exponentially slow).
	c.refreshRTO()

	if c.outstanding() == 0 {
		c.stopTimer()
	} else {
		c.armTimer(c.rto)
	}
	c.maybeFinishClose()
	c.trySend()
	if c.OnAck != nil {
		c.OnAck()
	}
}

func (c *Conn) rttSample(sample sim.Time) {
	if sample < 0 {
		return
	}
	if !c.hasRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasRTT = true
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.refreshRTO()
}

// refreshRTO recomputes the timeout from the current estimate, undoing
// exponential backoff once the connection is making progress.
func (c *Conn) refreshRTO() {
	var rto sim.Time
	if c.hasRTT {
		rto = c.srtt + 4*c.rttvar
	} else {
		rto = c.stack.cfg.InitialRTO
	}
	if rto < c.stack.cfg.MinRTO {
		rto = c.stack.cfg.MinRTO
	}
	if rto > c.stack.cfg.MaxRTO {
		rto = c.stack.cfg.MaxRTO
	}
	c.rto = rto
}

func (c *Conn) processData(seg *Segment) {
	end := seg.Seq + uint64(seg.Data.Len())
	switch {
	case end <= c.rcvNxt:
		// Complete duplicate (e.g. our ACK was lost at the snapshot —
		// Scenario 2). Re-ACK and discard.
		c.DupSegments++
		c.sendAck()
	case seg.Seq > c.rcvNxt:
		// Out of order: stash a zero-copy view and duplicate-ACK. The
		// stash is bounded by the receive window (this symmetric stack
		// advertises SendWindow both ways): an honest go-back-N peer
		// never sends past rcvNxt+window, because its sndUna can only
		// trail our rcvNxt — so the bound drops nothing in normal
		// operation and exists to stop a buggy or hostile peer from
		// growing the map without limit.
		if end > c.rcvNxt+uint64(c.stack.cfg.SendWindow) {
			c.stack.Stats.OOODroppedBytes += uint64(seg.Data.Len())
			c.sendAck()
			return
		}
		if c.ooo == nil {
			c.ooo = make(map[uint64]payload.Bytes)
		}
		if old, dup := c.ooo[seg.Seq]; dup {
			c.oooBytes -= old.Len()
		}
		c.ooo[seg.Seq] = seg.Data
		c.oooBytes += seg.Data.Len()
		c.sendAck()
	default:
		// In order (possibly with an already-received prefix). The
		// segment's chunks enter the receive queue by reference.
		skip := int(c.rcvNxt - seg.Seq)
		c.recvQ.push(seg.Data.Slice(skip, seg.Data.Len()))
		c.rcvNxt = end
		// Drain contiguous out-of-order segments.
		for {
			data, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.oooBytes -= data.Len()
			c.recvQ.push(data)
			c.rcvNxt += uint64(data.Len())
		}
		c.sendAck()
		if c.OnReadable != nil {
			c.OnReadable()
		}
	}
}

func (c *Conn) processFin(seg *Segment) {
	finSeq := seg.Seq + uint64(seg.Data.Len())
	if finSeq != c.rcvNxt {
		// FIN for data we have not seen yet (or a duplicate): if it is a
		// duplicate, re-ACK.
		if finSeq < c.rcvNxt {
			c.sendAck()
		}
		return
	}
	if !c.finRcvd {
		c.rcvNxt++
		c.finRcvd = true
		c.remoteFin = true
		if c.state == StateEstablished {
			c.state = StateClosing
		}
		if c.OnReadable != nil {
			c.OnReadable() // EOF is a readability event
		}
	}
	c.sendAck()
	c.maybeFinishClose()
}

func (c *Conn) maybeFinishClose() {
	if c.finRcvd && c.finSent && c.finAcked && c.state != StateClosed {
		c.teardown(StateClosed, nil)
	}
}

func (c *Conn) sendAck() {
	c.sendSegment(&Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
}

// teardown finalises the connection and notifies the owner on error.
func (c *Conn) teardown(state State, err error) {
	c.state = state
	c.stopTimer()
	// A torn-down connection never rearms (trySend and handle() bail on
	// Closed/Reset states), so return the timer's slot to the kernel pool.
	c.timer.Free()
	c.timer = nil
	if err != nil && c.OnError != nil {
		c.OnError(err)
	}
	if state == StateReset {
		c.stack.resets++
		if tr := c.stack.tracer; tr != nil {
			why := "peer-rst"
			if err == ErrTimeout {
				why = "retry-budget"
			}
			tr.Emit(c.now(), obs.EvTCPReset, c.stack.trNode, c.stack.trDom, "reset",
				obs.Str("conn", c.key.String()), obs.Str("why", why))
			tr.Inc("tcp.resets", 1)
		}
	}
}

// freeze cancels the live retransmission timer, recording its remainder.
// Guest jiffy timers do not advance while the VM is suspended.
func (c *Conn) freeze() {
	if c.timer.Pending() {
		c.timerLeft = c.timer.When() - c.now()
		c.timer.Stop()
	} else {
		c.timerLeft = -1
	}
}

// thaw re-arms the retransmission timer from its recorded remainder.
func (c *Conn) thaw() {
	if c.timerLeft >= 0 {
		c.armTimer(c.timerLeft)
		c.timerLeft = -1
	}
}
