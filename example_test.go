package dvc_test

import (
	"fmt"

	"dvc"
)

// Example reproduces the paper's core capability in a few lines: an
// unmodified MPI application (HPL) running in a virtual cluster survives
// a completely transparent parallel checkpoint.
func Example() {
	s := dvc.NewSimulation(42)
	s.AddCluster("alpha", 8)
	s.Start()

	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: 4, VMRAM: 256 << 20})
	vc.LaunchMPI(6000, func(rank int) dvc.App { return dvc.NewHPL(128, 42, 2e-5) })
	s.RunFor(2 * dvc.Second)

	res := s.MustCheckpoint(vc)
	fmt.Println("checkpoint ok:", res.OK)
	fmt.Println("skew under budget:", res.SaveSkew < dvc.TCPRetryBudget())
	fmt.Println("images saved:", len(res.Images))

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	fmt.Println("job succeeded:", js.AllOK())
	// Output:
	// checkpoint ok: true
	// skew under budget: true
	// images saved: 4
	// job succeeded: true
}

// ExampleSimulation_Migrate moves a running virtual cluster between
// physical clusters with stop-and-copy.
func ExampleSimulation_Migrate() {
	s := dvc.NewSimulation(7)
	s.AddCluster("alpha", 2)
	s.AddCluster("beta", 2)
	s.Start()
	vc := s.MustAllocate(dvc.VCSpec{Name: "m", Nodes: 2, VMRAM: 256 << 20, Clusters: []string{"alpha"}})
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(3000, 20*dvc.Millisecond, 1024) })
	s.RunFor(dvc.Second)

	res, err := s.Migrate(vc, s.FreeNodes("beta"))
	fmt.Println("migrated:", err == nil && res.OK)
	fmt.Println("on beta:", vc.PhysicalNodes()[0].Cluster() == "beta")
	fmt.Println("job finished:", s.RunUntilJobDone(vc, dvc.Hour).AllOK())
	// Output:
	// migrated: true
	// on beta: true
	// job finished: true
}
