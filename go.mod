module dvc

go 1.22
