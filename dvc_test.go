package dvc

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	s := NewSimulation(42)
	s.AddCluster("alpha", 8)
	s.Start()
	vc := s.MustAllocate(VCSpec{Name: "job1", Nodes: 4, VMRAM: 256 << 20})
	if _, err := vc.LaunchMPI(6000, func(rank int) App { return NewHPL(96, 7, 1e-5) }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * Second)
	res := s.MustCheckpoint(vc)
	if res.SaveSkew > 50*Millisecond {
		t.Fatalf("NTP skew %v", res.SaveSkew)
	}
	js := s.RunUntilJobDone(vc, 2*Hour)
	if !js.AllOK() {
		t.Fatalf("job status %+v", js)
	}
}

func TestNaiveCoordinatorAvailable(t *testing.T) {
	s := NewSimulation(1)
	s.AddCluster("alpha", 2)
	s.Start()
	s.SetLSC(NaiveLSC())
	vc := s.MustAllocate(VCSpec{Name: "j", Nodes: 2, VMRAM: 256 << 20})
	vc.LaunchMPI(6000, func(int) App { return NewHalo(600, 20*Millisecond, 1024) })
	s.RunFor(Second)
	res := s.MustCheckpoint(vc)
	if res.SaveSkew < 100*Millisecond {
		t.Fatalf("naive skew %v suspiciously tight", res.SaveSkew)
	}
}

func TestMigrationFlow(t *testing.T) {
	s := NewSimulation(2)
	s.AddCluster("alpha", 3)
	s.AddCluster("beta", 3)
	s.Start()
	vc := s.MustAllocate(VCSpec{Name: "m", Nodes: 3, VMRAM: 256 << 20, Clusters: []string{"alpha"}})
	vc.LaunchMPI(6000, func(int) App { return NewHalo(3000, 20*Millisecond, 1024) })
	s.RunFor(Second)
	res, err := s.Migrate(vc, s.FreeNodes("beta"))
	if err != nil || !res.OK {
		t.Fatalf("migrate: %v, %+v", err, res)
	}
	for _, n := range vc.PhysicalNodes() {
		if n.Cluster() != "beta" {
			t.Fatal("VC not on beta after migration")
		}
	}
	if !s.RunUntilJobDone(vc, Hour).AllOK() {
		t.Fatal("job failed after migration")
	}
}

func TestLiveMigrationFlow(t *testing.T) {
	s := NewSimulation(9)
	s.AddCluster("alpha", 2)
	s.AddCluster("beta", 2)
	s.Start()
	vc := s.MustAllocate(VCSpec{Name: "lm", Nodes: 2, VMRAM: 256 << 20, Clusters: []string{"alpha"}})
	vc.LaunchMPI(6000, func(int) App { return NewHalo(5000, 20*Millisecond, 1024) })
	s.RunFor(Second)
	for _, d := range vc.Domains() {
		d.SetDirtyRate(10e6)
	}
	res, err := s.LiveMigrate(vc, s.FreeNodes("beta"), DefaultLiveConfig())
	if err != nil || !res.OK {
		t.Fatalf("live migrate: %v %+v", err, res)
	}
	if res.Downtime > Second {
		t.Fatalf("live downtime %v", res.Downtime)
	}
	if !s.RunUntilJobDone(vc, Hour).AllOK() {
		t.Fatal("job failed after live migration")
	}
}

func TestCrashRecoveryFlow(t *testing.T) {
	s := NewSimulation(3)
	s.AddCluster("alpha", 6)
	s.Start()
	cfg := NTPLSC()
	cfg.ContinueAfterSave = true
	s.SetLSC(cfg)
	vc := s.MustAllocate(VCSpec{Name: "r", Nodes: 3, VMRAM: 256 << 20})
	vc.LaunchMPI(6000, func(int) App { return NewHalo(4000, 20*Millisecond, 1024) })
	s.RunFor(Second)
	ck := s.MustCheckpoint(vc)

	// Kill a hosting node, tear down, recover on fresh nodes.
	vc.PhysicalNodes()[0].Fail()
	s.RunFor(5 * Second)
	vc.Teardown()
	rr, err := s.Recover(vc, ck.Generation, s.FreeNodes("alpha")[:3])
	if err != nil || !rr.OK {
		t.Fatalf("recover: %v, %+v", err, rr)
	}
	if !s.RunUntilJobDone(vc, Hour).AllOK() {
		t.Fatal("job failed after recovery")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 19 { // E1-E15, ablations A1-A2, SCALE, PSCALE
		t.Fatalf("got %d experiments", len(ids))
	}
	if ExperimentTitle("E1") == "" {
		t.Fatal("E1 has no title")
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTCPRetryBudget(t *testing.T) {
	if b := TCPRetryBudget(); b != 6200*Millisecond {
		t.Fatalf("budget %v", b)
	}
}

func TestAllocateFailsWithoutCapacity(t *testing.T) {
	s := NewSimulation(4)
	s.AddCluster("alpha", 2)
	s.Start()
	if _, err := s.Allocate(VCSpec{Name: "big", Nodes: 5, VMRAM: 256 << 20}); err == nil {
		t.Fatal("impossible allocation accepted")
	}
}

func TestCheckpointCatalogFacade(t *testing.T) {
	s := NewSimulation(71)
	s.AddCluster("alpha", 3)
	s.Start()
	cfg := NTPLSC()
	cfg.ContinueAfterSave = true
	s.SetLSC(cfg)
	vc := s.MustAllocate(VCSpec{Name: "cat", Nodes: 2, VMRAM: 256 << 20})
	vc.LaunchMPI(6000, func(int) App { return NewHalo(8000, 20*Millisecond, 512) })
	s.RunFor(Second)
	for i := 0; i < 3; i++ {
		s.MustCheckpoint(vc)
		s.RunFor(2 * Second)
	}
	if gens := s.CheckpointGenerations(vc); len(gens) != 3 {
		t.Fatalf("generations %v", gens)
	}
	if deleted := s.PruneCheckpoints(vc, 1); deleted != 4 { // 2 gens x 2 domains
		t.Fatalf("pruned %d objects", deleted)
	}
	if gens := s.CheckpointGenerations(vc); len(gens) != 1 || gens[0] != 2 {
		t.Fatalf("after prune: %v", gens)
	}
}
