// Package dvc is a discrete-event-simulated reproduction of Dynamic
// Virtual Clustering (Emeneker & Stanzione, "Increasing Reliability
// through Dynamic Virtual Clustering", 2007): per-job virtual clusters of
// Xen-like VMs over physical clusters, with Lazy Synchronous
// Checkpointing (LSC) — completely transparent parallel
// checkpoint/migrate/restart for unmodified MPI applications.
//
// The package is a facade over the building blocks in internal/:
//
//   - a deterministic event kernel (virtual time, seeded randomness),
//   - physical clusters with failing nodes, hardware clocks and NTP,
//   - a network fabric and a TCP implementation whose retransmission
//     state freezes and travels with VM images,
//   - a Xen-like hypervisor with pause/save/restore/migrate,
//   - an MPI runtime and the HPCC workloads (HPL, PTRANS) implemented as
//     checkpointable state machines and verified numerically,
//   - the DVC manager + LSC coordinator (naive, NTP-scheduled and
//     health-checked variants), and a Torque/Moab-style resource
//     manager.
//
// # Quick start
//
//	s := dvc.NewSimulation(42)
//	s.AddCluster("alpha", 8)
//	s.Start()
//	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: 4, VMRAM: 256 << 20})
//	vc.LaunchMPI(6000, func(rank int) dvc.App { return dvc.NewHPL(128, 7, 10) })
//	s.RunFor(2 * dvc.Second)
//	res := s.MustCheckpoint(vc)        // transparent parallel checkpoint
//	s.RunUntilJobDone(vc, dvc.Hour)    // job resumes and completes
//
// Every quantitative claim from the paper can be regenerated through
// RunExperiment (ids E1–E15 plus ablations A1–A2; see EXPERIMENTS.md).
package dvc

import (
	"fmt"
	"io"

	"dvc/internal/clock"
	"dvc/internal/core"
	"dvc/internal/experiments"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/tcp"
	"dvc/internal/vm"
	"dvc/internal/workload"
)

// Re-exported simulation time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Core type aliases: these are the stable public names for the library's
// main concepts.
type (
	// Time is virtual simulation time in nanoseconds.
	Time = sim.Time
	// VCSpec describes a virtual cluster request.
	VCSpec = core.VCSpec
	// VirtualCluster is a per-job cluster of virtual machines.
	VirtualCluster = core.VirtualCluster
	// JobStatus summarises the processes of a VC's job.
	JobStatus = core.JobStatus
	// LSCConfig tunes the Lazy Synchronous Checkpointing coordinator.
	LSCConfig = core.LSCConfig
	// CheckpointResult reports one coordinated checkpoint.
	CheckpointResult = core.CheckpointResult
	// RestoreResult reports one coordinated restore.
	RestoreResult = core.RestoreResult
	// LiveConfig tunes pre-copy live migration.
	LiveConfig = core.LiveConfig
	// LiveMigrationResult reports a pre-copy migration.
	LiveMigrationResult = core.LiveMigrationResult
	// Node is one physical machine.
	Node = phys.Node
	// App is an MPI application (a resumable state machine).
	App = mpi.App
	// Ctx is the per-step context handed to an App.
	Ctx = mpi.Ctx
	// Op is one MPI operation.
	Op = mpi.Op
	// WatchdogConfig tunes the guest software watchdog.
	WatchdogConfig = guest.WatchdogConfig
	// Image is a saved whole-VM checkpoint.
	Image = vm.Image
	// JobSpec is one resource-manager job.
	JobSpec = workload.JobSpec
	// ExperimentOptions configures a paper-experiment run.
	ExperimentOptions = experiments.Options
	// ExperimentResult is a paper-experiment outcome with shape checks.
	ExperimentResult = experiments.Result
	// Tracer records a deterministic event/span trace (internal/obs).
	Tracer = obs.Tracer
	// Sink is the tracer's pluggable record pipeline: memory, streaming
	// JSONL, flight recorder, filter/sample, or a tee of several.
	Sink = obs.Sink
	// FilterConfig selects a deterministic subset of a record stream.
	FilterConfig = obs.FilterConfig
	// FlightSink is a fixed-size ring buffer of the most recent records.
	FlightSink = obs.FlightSink
	// SummarySink accumulates streaming per-type counts and span
	// percentiles without retaining records.
	SummarySink = obs.SummarySink
	// Series is a windowed time-series of registry metrics sampled by
	// the kernel probe.
	Series = obs.Series
)

// Workload constructors re-exported for applications.
var (
	// NewHPL builds the High-Performance Linpack workload (verified LU).
	NewHPL = hpcc.NewHPL
	// NewPTRANS builds the parallel transpose workload (verified).
	NewPTRANS = hpcc.NewPTRANS
	// NewHalo builds the ring halo-exchange kernel.
	NewHalo = hpcc.NewHalo
	// NewPingPong builds the latency/bandwidth microbenchmark.
	NewPingPong = hpcc.NewPingPong
	// NewSeqJob builds a single-node compute job (a guest.Program).
	NewSeqJob = hpcc.NewSeqJob
	// NewStream builds the STREAM memory-bandwidth kernel.
	NewStream = hpcc.NewStream
	// NewRandomAccess builds the GUPS fine-grained-update kernel.
	NewRandomAccess = hpcc.NewRandomAccess
	// DefaultWatchdog is the paper's guest watchdog configuration.
	DefaultWatchdog = guest.DefaultWatchdog
	// NaiveLSC is the paper's unreliable first coordinator (§3.1).
	NaiveLSC = core.DefaultNaiveLSC
	// NTPLSC is the working NTP-scheduled coordinator (§3.1-3.2).
	NTPLSC = core.DefaultNTPLSC
	// NewTracer creates an event/span recorder for SetTracer or
	// ExperimentOptions.Tracer.
	NewTracer = obs.NewTracer
	// NewTracerWithSink creates a tracer that forwards records to a
	// custom sink instead of buffering them in memory.
	NewTracerWithSink = obs.NewTracerWithSink
	// NewJSONLSink creates a streaming JSONL sink with a fixed buffer.
	NewJSONLSink = obs.NewJSONLSink
	// NewFlightSink creates a fixed-size flight recorder.
	NewFlightSink = obs.NewFlightSink
	// NewFilterSink wraps a sink with a deterministic filter/sampler.
	NewFilterSink = obs.NewFilterSink
	// NewSummarySink creates a streaming trace summariser.
	NewSummarySink = obs.NewSummarySink
	// TeeSinks fans records out to several sinks in order.
	TeeSinks = obs.Tee
)

// Simulation bundles a complete DVC environment: event kernel, physical
// site, shared checkpoint store, DVC manager and LSC coordinator.
type Simulation struct {
	kernel *sim.Kernel
	site   *phys.Site
	store  *storage.Store
	mgr    *core.Manager
	co     *core.Coordinator
	lsc    core.LSCConfig

	started bool
}

// NewSimulation creates an environment seeded for reproducibility, with
// the NTP-scheduled LSC coordinator.
func NewSimulation(seed int64) *Simulation {
	k := sim.NewKernel(seed)
	site := phys.NewSite(k, clock.DefaultConfig(), clock.DefaultNTPConfig())
	store := storage.New(k, storage.DefaultConfig())
	mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
	lsc := core.DefaultNTPLSC()
	return &Simulation{
		kernel: k,
		site:   site,
		store:  store,
		mgr:    mgr,
		co:     core.NewCoordinator(mgr, lsc),
		lsc:    lsc,
	}
}

// SetLSC replaces the checkpoint coordinator configuration (e.g. with
// NaiveLSC() to reproduce the paper's failure mode).
func (s *Simulation) SetLSC(cfg LSCConfig) {
	s.lsc = cfg
	s.co = core.NewCoordinator(s.mgr, cfg)
}

// AddCluster creates a physical cluster of n gigabit-Ethernet nodes.
// Call before Start.
func (s *Simulation) AddCluster(name string, n int) []*Node {
	nodes := s.site.AddCluster(name, n, phys.DefaultSpec(), netsim.EthernetGigE())
	s.mgr.AdoptNodes()
	return nodes
}

// Start begins background services (NTP clock discipline). Clusters must
// exist first.
func (s *Simulation) Start() {
	if !s.started {
		s.site.NTP.Start()
		s.started = true
	}
}

// SetTracer attaches a deterministic event tracer to every layer of the
// simulation (hypervisors, transport, fabric, LSC) and starts the kernel
// probe. Call before Start; pass nil to leave tracing off (the default —
// untraced hot paths pay only a nil check). Note the probe schedules
// ordinary kernel events, so a traced run's event schedule differs from
// an untraced one; any two traced runs with the same seed are identical.
func (s *Simulation) SetTracer(t *Tracer) {
	s.mgr.SetTracer(t)
	if t != nil {
		obs.StartKernelProbe(s.kernel, t, 500*Millisecond)
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.kernel.Now() }

// RunFor advances the simulation by d.
func (s *Simulation) RunFor(d Time) { s.kernel.RunFor(d) }

// RunUntil advances the simulation to the absolute time t.
func (s *Simulation) RunUntil(t Time) { s.kernel.RunUntil(t) }

// Manager exposes the DVC control plane for advanced use.
func (s *Simulation) Manager() *core.Manager { return s.mgr }

// Coordinator exposes the LSC coordinator for advanced use.
func (s *Simulation) Coordinator() *core.Coordinator { return s.co }

// Site exposes the physical site (nodes, clocks, fault injection).
func (s *Simulation) Site() *phys.Site { return s.site }

// Allocate places and boots a virtual cluster, running the simulation
// until it is ready.
func (s *Simulation) Allocate(spec VCSpec) (*VirtualCluster, error) {
	ready := false
	vc, err := s.mgr.Allocate(spec, func(*core.VirtualCluster) { ready = true; s.kernel.Halt() })
	if err != nil {
		return nil, err
	}
	deadline := s.kernel.Now() + 10*Minute
	for !ready && s.kernel.Now() < deadline {
		s.kernel.RunUntil(deadline)
	}
	if !ready {
		return nil, fmt.Errorf("dvc: %s did not become ready", spec.Name)
	}
	return vc, nil
}

// MustAllocate is Allocate, panicking on error (for examples and tests).
func (s *Simulation) MustAllocate(spec VCSpec) *VirtualCluster {
	vc, err := s.Allocate(spec)
	if err != nil {
		panic(err)
	}
	return vc
}

// Checkpoint takes one coordinated LSC checkpoint of the VC, running the
// simulation until it completes.
func (s *Simulation) Checkpoint(vc *VirtualCluster) (*CheckpointResult, error) {
	var res *CheckpointResult
	if err := s.co.Checkpoint(vc, func(r *core.CheckpointResult) { res = r; s.kernel.Halt() }); err != nil {
		return nil, err
	}
	deadline := s.kernel.Now() + Hour
	for res == nil && s.kernel.Now() < deadline {
		s.kernel.RunUntil(deadline)
	}
	if res == nil {
		return nil, fmt.Errorf("dvc: checkpoint of %s never completed", vc.Name())
	}
	return res, nil
}

// MustCheckpoint is Checkpoint, panicking on error or failed checkpoint.
func (s *Simulation) MustCheckpoint(vc *VirtualCluster) *CheckpointResult {
	res, err := s.Checkpoint(vc)
	if err != nil {
		panic(err)
	}
	if !res.OK {
		panic(fmt.Sprintf("dvc: checkpoint failed: %s", res.Reason))
	}
	return res
}

// Migrate moves a running VC onto targets via checkpoint/restore, running
// the simulation until it completes.
func (s *Simulation) Migrate(vc *VirtualCluster, targets []*Node) (*CheckpointResult, error) {
	var res *CheckpointResult
	if err := s.co.Migrate(vc, targets, func(r *core.CheckpointResult) { res = r; s.kernel.Halt() }); err != nil {
		return nil, err
	}
	deadline := s.kernel.Now() + Hour
	for res == nil && s.kernel.Now() < deadline {
		s.kernel.RunUntil(deadline)
	}
	if res == nil {
		return nil, fmt.Errorf("dvc: migration of %s never completed", vc.Name())
	}
	return res, nil
}

// LiveMigrate moves a running VC onto targets with pre-copy: memory
// streams while the cluster computes, and only the final residual copy
// happens inside the coordinated pause. Downtime is typically a small
// fraction of Migrate's stop-and-copy.
func (s *Simulation) LiveMigrate(vc *VirtualCluster, targets []*Node, cfg LiveConfig) (*LiveMigrationResult, error) {
	var res *LiveMigrationResult
	if err := s.co.LiveMigrate(vc, targets, cfg, func(r *core.LiveMigrationResult) { res = r; s.kernel.Halt() }); err != nil {
		return nil, err
	}
	deadline := s.kernel.Now() + Hour
	for res == nil && s.kernel.Now() < deadline {
		s.kernel.RunUntil(deadline)
	}
	if res == nil {
		return nil, fmt.Errorf("dvc: live migration of %s never completed", vc.Name())
	}
	return res, nil
}

// DefaultLiveConfig returns standard pre-copy bounds.
func DefaultLiveConfig() LiveConfig { return core.DefaultLiveConfig() }

// Recover restores a VC's saved generation onto fresh nodes after its
// domains were destroyed (e.g. by a node crash). Call vc.Teardown first
// if remnants are still running.
func (s *Simulation) Recover(vc *VirtualCluster, generation int, targets []*Node) (*RestoreResult, error) {
	var res *RestoreResult
	s.co.RestoreVC(vc, generation, targets, func(r *core.RestoreResult) { res = r; s.kernel.Halt() })
	deadline := s.kernel.Now() + Hour
	for res == nil && s.kernel.Now() < deadline {
		s.kernel.RunUntil(deadline)
	}
	if res == nil {
		return nil, fmt.Errorf("dvc: recovery of %s never completed", vc.Name())
	}
	return res, nil
}

// CheckpointGenerations lists the stored checkpoint generations of a VC
// (the image catalog — the paper's "image management capability to track
// the correct staging and restart of images").
func (s *Simulation) CheckpointGenerations(vc *VirtualCluster) []int {
	return s.co.Generations(vc.Name())
}

// PruneCheckpoints deletes stored generations beyond the newest keep,
// preserving incremental chains the kept generations depend on. It
// returns the number of image objects removed.
func (s *Simulation) PruneCheckpoints(vc *VirtualCluster, keep int) int {
	return s.co.PruneGenerations(vc.Name(), keep)
}

// RunUntilJobDone advances the simulation until the VC's job finishes
// (all processes exited) or limit elapses, returning the final status.
// The wait is event-driven: every guest process exit halts the kernel,
// so the simulation stops at the exact completion instant instead of
// the next one-second poll boundary.
func (s *Simulation) RunUntilJobDone(vc *VirtualCluster, limit Time) JobStatus {
	deadline := s.kernel.Now() + limit
	notify := func(fn func()) {
		for _, os := range vc.OSes() {
			if os != nil {
				os.SetExitNotify(fn)
			}
		}
	}
	defer notify(nil)
	for {
		js := vc.JobStatus()
		if js.Done() && vc.State() == core.VCReady {
			return js
		}
		if s.kernel.Now() >= deadline {
			return vc.JobStatus()
		}
		// Re-arm each pass: a restore mid-wait replaces the guest OSes.
		notify(s.kernel.Halt)
		s.kernel.RunUntil(deadline)
	}
}

// FreeNodes returns healthy nodes of a cluster (all clusters if name is
// empty) that are not hosting any domain.
func (s *Simulation) FreeNodes(cluster string) []*Node {
	var out []*Node
	for _, n := range s.site.UpNodes(cluster) {
		if h, ok := s.mgr.Hypervisor(n.ID()); ok && len(h.Domains()) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// TCPRetryBudget reports the transport's retry budget — the save-skew
// ceiling LSC must respect.
func TCPRetryBudget() Time {
	cfg := tcp.DefaultConfig()
	return cfg.RetryBudget(cfg.InitialRTO)
}

// RunExperiment regenerates one of the paper's tables/figures (E1–E15,
// A1–A2).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}

// RunAllExperiments regenerates every table/figure in id order.
func RunAllExperiments(opts ExperimentOptions) ([]*ExperimentResult, error) {
	return experiments.RunAll(opts)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's one-line description.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// ScaleSpec sizes a generated topology run (dvcsim -dc/-cluster/-host/-vm).
type ScaleSpec = experiments.ScaleSpec

// ScaleResult reports a generated-topology run.
type ScaleResult = experiments.ScaleResult

// RunScale generates a datacenter/cluster/host topology and drives the
// reference LSC workload over it end-to-end (tr may be nil).
func RunScale(seed int64, spec ScaleSpec, tr *Tracer) (*ScaleResult, error) {
	return experiments.RunScale(seed, spec, tr)
}

// WriteBanner prints the library banner used by the command-line tools.
func WriteBanner(w io.Writer) {
	fmt.Fprintln(w, "dvc: Dynamic Virtual Clustering reproduction (Emeneker & Stanzione, 2007)")
}
