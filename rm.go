package dvc

import (
	"io"
	"math/rand"

	"dvc/internal/rm"
	"dvc/internal/workload"
)

// Resource-manager surface: the Torque/Moab-style batch layer the paper
// integrates DVC with. A ResourceManager executes job traces against the
// simulation's site, either natively (jobs die with their nodes and are
// locked to matching software stacks) or on DVC virtual clusters with
// periodic LSC checkpoints.

// Aliases for the resource-manager types.
type (
	// RMConfig tunes the resource manager.
	RMConfig = rm.Config
	// RMStats summarises completed work.
	RMStats = rm.Stats
	// Job is one tracked resource-manager job.
	Job = rm.Job
	// MixConfig tunes the synthetic job-mix generator.
	MixConfig = workload.MixConfig
)

// Backend selection for the resource manager.
const (
	// PhysicalBackend runs jobs natively on nodes.
	PhysicalBackend = rm.Physical
	// DVCBackend runs jobs in per-job virtual clusters.
	DVCBackend = rm.DVC
)

// ResourceManager wraps rm.RM with the simulation it runs in.
type ResourceManager struct {
	*rm.RM
	sim *Simulation
}

// NewResourceManager installs a resource manager over the simulation's
// site and starts its scheduling loop. The DVC backend uses the
// simulation's manager and current LSC coordinator.
func (s *Simulation) NewResourceManager(cfg RMConfig) *ResourceManager {
	var r *rm.RM
	if cfg.Backend == rm.DVC {
		r = rm.New(s.kernel, s.site, s.mgr, s.co, cfg)
	} else {
		r = rm.New(s.kernel, s.site, nil, nil, cfg)
	}
	r.Start()
	return &ResourceManager{RM: r, sim: s}
}

// DefaultRMConfig returns a sensible configuration for the backend.
func DefaultRMConfig(backend rm.Backend) RMConfig { return rm.DefaultConfig(backend) }

// RunUntilAllDone advances the simulation until the RM has finished every
// submitted job (or limit elapses), returning the final statistics.
func (r *ResourceManager) RunUntilAllDone(limit Time) RMStats {
	deadline := r.sim.kernel.Now() + limit
	for r.sim.kernel.Now() < deadline && !r.AllDone() {
		r.sim.kernel.RunFor(10 * Second)
	}
	return r.Stats()
}

// GenerateTrace draws a synthetic job mix using the simulation's
// deterministic random source.
func (s *Simulation) GenerateTrace(cfg MixConfig) []JobSpec {
	return workload.Generate(s.kernel.Rand(), cfg)
}

// GenerateTraceSeeded draws a job mix from an independent seed (so the
// same trace can be replayed across simulations).
func GenerateTraceSeeded(seed int64, cfg MixConfig) []JobSpec {
	return workload.Generate(rand.New(rand.NewSource(seed)), cfg)
}

// WriteTrace serialises a trace as JSON.
func WriteTrace(w io.Writer, trace []JobSpec) error { return workload.WriteTrace(w, trace) }

// ReadTrace parses a JSON trace.
func ReadTrace(r io.Reader) ([]JobSpec, error) { return workload.ReadTrace(r) }
