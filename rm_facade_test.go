package dvc

import (
	"bytes"
	"testing"
)

func TestResourceManagerFacadePhysical(t *testing.T) {
	s := NewSimulation(61)
	s.AddCluster("alpha", 6)
	s.Start()
	r := s.NewResourceManager(DefaultRMConfig(PhysicalBackend))
	trace := s.GenerateTrace(MixConfig{
		Count:       5,
		ArrivalMean: 20 * Second,
		Widths:      []int{1, 2},
		WorkMin:     30 * Second,
		WorkMax:     2 * Minute,
	})
	r.SubmitTrace(trace)
	stats := r.RunUntilAllDone(4 * Hour)
	if stats.Completed != 5 || stats.Failed != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.BusyNodeTime <= 0 {
		t.Fatal("no busy node-time accounted")
	}
}

func TestResourceManagerFacadeDVCWithFaults(t *testing.T) {
	s := NewSimulation(62)
	s.AddCluster("alpha", 6)
	s.Start()
	cfg := NTPLSC()
	cfg.ContinueAfterSave = true
	s.SetLSC(cfg)
	rmCfg := DefaultRMConfig(DVCBackend)
	rmCfg.CheckpointInterval = Minute
	r := s.NewResourceManager(rmCfg)
	r.Submit(JobSpec{ID: "j0", Width: 2, Work: 6 * Minute})
	// Crash a node mid-run; the RM recovers from the checkpoint.
	s.RunFor(3 * Minute)
	s.Site().UpNodes("alpha")[0].Fail()
	stats := r.RunUntilAllDone(6 * Hour)
	if stats.Completed != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestTraceIOFacade(t *testing.T) {
	trace := GenerateTraceSeeded(9, MixConfig{
		Count: 4, ArrivalMean: 10 * Second,
		Widths: []int{1}, WorkMin: Minute, WorkMax: 2 * Minute,
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || len(back) != 4 {
		t.Fatalf("round trip: %v, %d jobs", err, len(back))
	}
	// Seeded generation is reproducible.
	again := GenerateTraceSeeded(9, MixConfig{
		Count: 4, ArrivalMean: 10 * Second,
		Widths: []int{1}, WorkMin: Minute, WorkMax: 2 * Minute,
	})
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatal("seeded trace not reproducible")
		}
	}
}
