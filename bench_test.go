package dvc

// One benchmark per paper table/figure (see DESIGN.md's per-experiment
// index). Each iteration regenerates the experiment at quick settings and
// fails the benchmark if any of its shape checks against the paper break.
// Set DVC_BENCH_FULL=1 for paper-scale parameters (E2's >2000 trials,
// E10's 1024-VM sweeps, ...).
//
// Key per-iteration metrics are attached with b.ReportMetric so -benchmem
// runs document the reproduced numbers alongside timing.

import (
	"os"
	"testing"
)

func benchOptions(b *testing.B, trials int) ExperimentOptions {
	b.Helper()
	return ExperimentOptions{
		Seed:   42,
		Trials: trials,
		Full:   os.Getenv("DVC_BENCH_FULL") == "1",
	}
}

func runExperimentBench(b *testing.B, id string, trials int) *ExperimentResult {
	b.Helper()
	var last *ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, benchOptions(b, trials))
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.FailedChecks() {
			b.Fatalf("%s shape check %q failed: %s", id, c.Name, c.Detail)
		}
		last = res
	}
	return last
}

// BenchmarkE1NaiveLSCScaling regenerates §3.1's naive-coordinator failure
// curve (paper: fine ≤8 nodes, 50% fail at 10, 90% at 12).
func BenchmarkE1NaiveLSCScaling(b *testing.B) {
	runExperimentBench(b, "E1", 6)
}

// BenchmarkE2NTPLSCReliability regenerates §3.2's headline result (paper:
// 0 failures in >2000 saves/restores of 26 VMs on 26 nodes).
func BenchmarkE2NTPLSCReliability(b *testing.B) {
	runExperimentBench(b, "E2", 4)
}

// BenchmarkE3ConsistentCut regenerates Figure 2's scenarios: both TCP
// cuts are consistent, the unreliable-protocol control is not.
func BenchmarkE3ConsistentCut(b *testing.B) {
	runExperimentBench(b, "E3", 0)
}

// BenchmarkE4CheckpointOverhead regenerates §3.2's slowdown and
// wall-clock-jump observations for HPL and PTRANS.
func BenchmarkE4CheckpointOverhead(b *testing.B) {
	runExperimentBench(b, "E4", 0)
}

// BenchmarkE5CheckpointEfficiency regenerates the abstract's DVC-vs-
// application-checkpoint efficiency comparison (§2 taxonomy).
func BenchmarkE5CheckpointEfficiency(b *testing.B) {
	runExperimentBench(b, "E5", 0)
}

// BenchmarkE6Watchdog regenerates §3.2's watchdog observation: exactly
// one stall report per VM per save/restore cycle, execution unaffected.
func BenchmarkE6Watchdog(b *testing.B) {
	runExperimentBench(b, "E6", 0)
}

// BenchmarkE7VirtOverhead regenerates the abstract's sequential/parallel
// virtualisation overhead measurements.
func BenchmarkE7VirtOverhead(b *testing.B) {
	runExperimentBench(b, "E7", 0)
}

// BenchmarkE8FaultTolerantThroughput regenerates §1's claim that DVC+LSC
// loses less work than physical requeue under node faults.
func BenchmarkE8FaultTolerantThroughput(b *testing.B) {
	runExperimentBench(b, "E8", 0)
}

// BenchmarkE9MultiCluster regenerates §1's claim that spanning virtual
// clusters outperform the same clusters operating independently.
func BenchmarkE9MultiCluster(b *testing.B) {
	runExperimentBench(b, "E9", 0)
}

// BenchmarkE10HealthCheckScaling regenerates §4's scaling argument:
// health-checked saves keep large checkpoint sets reliable.
func BenchmarkE10HealthCheckScaling(b *testing.B) {
	runExperimentBench(b, "E10", 4)
}

// BenchmarkE11Migration regenerates §4's parallel-migration extension
// with downtime vs cluster size.
func BenchmarkE11Migration(b *testing.B) {
	runExperimentBench(b, "E11", 0)
}

// BenchmarkE12Infiniband regenerates §4's InfiniBand discussion: fabric
// performance vs snapshot consistency.
func BenchmarkE12Infiniband(b *testing.B) {
	runExperimentBench(b, "E12", 0)
}

// BenchmarkE13LiveMigration compares pre-copy live migration against the
// LSC stop-and-copy across guest dirty rates (extension).
func BenchmarkE13LiveMigration(b *testing.B) {
	runExperimentBench(b, "E13", 0)
}

// BenchmarkE14IncrementalCheckpoints compares full, incremental and
// consolidated checkpoint policies (extension).
func BenchmarkE14IncrementalCheckpoints(b *testing.B) {
	runExperimentBench(b, "E14", 0)
}

// BenchmarkE15HeterogeneousStacks regenerates DVC's founding motivation:
// pooling stack-locked clusters through per-job virtual software stacks.
func BenchmarkE15HeterogeneousStacks(b *testing.B) {
	runExperimentBench(b, "E15", 0)
}

// BenchmarkA1RetryBudgetAblation sweeps the TCP retry budget: the naive
// failure cliff follows the budget, the NTP coordinator does not care.
func BenchmarkA1RetryBudgetAblation(b *testing.B) {
	runExperimentBench(b, "A1", 4)
}

// BenchmarkA2ClockQualityAblation sweeps NTP residual error: LSC keeps a
// ~1000x safety margin over real NTP and only breaks near second-scale
// clock error.
func BenchmarkA2ClockQualityAblation(b *testing.B) {
	runExperimentBench(b, "A2", 4)
}

// BenchmarkCheckpoint26VMs measures one NTP-coordinated save/restore
// cycle of a 26-VM cluster — the paper's system size — as a plain
// operation benchmark.
func BenchmarkCheckpoint26VMs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSimulation(int64(i))
		s.AddCluster("alpha", 26)
		s.Start()
		vc := s.MustAllocate(VCSpec{Name: "b", Nodes: 26, VMRAM: 256 << 20})
		vc.LaunchMPI(6000, func(int) App { return NewHalo(4000, 20*Millisecond, 2048) })
		s.RunFor(Second)
		res := s.MustCheckpoint(vc)
		b.ReportMetric(res.SaveSkew.Seconds()*1000, "skew-ms")
		b.ReportMetric(res.Downtime.Seconds(), "downtime-s")
	}
}

// BenchmarkHPLSolve measures the distributed HPL solver itself (host
// compute cost of the reproduction's real numerics).
func BenchmarkHPLSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSimulation(int64(i))
		s.AddCluster("alpha", 4)
		s.Start()
		vc := s.MustAllocate(VCSpec{Name: "b", Nodes: 4, VMRAM: 256 << 20})
		vc.LaunchMPI(6000, func(int) App { return NewHPL(128, int64(i), 10) })
		js := s.RunUntilJobDone(vc, Hour)
		if !js.AllOK() {
			b.Fatal("hpl failed")
		}
	}
}
