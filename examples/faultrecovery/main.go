// Fault recovery: a physical node dies under a running parallel job. With
// DVC, the whole virtual cluster restarts from its last checkpoint on a
// different set of physical nodes — "virtual nodes cannot be broken".
package main

import (
	"fmt"
	"log"

	"dvc"
	"dvc/internal/hpcc"
)

func main() {
	s := dvc.NewSimulation(7)
	s.AddCluster("alpha", 7)
	s.Start()

	// Checkpoint-and-continue: periodic saves without the full Xen
	// save/restore cycle.
	cfg := dvc.NTPLSC()
	cfg.ContinueAfterSave = true
	s.SetLSC(cfg)

	vc := s.MustAllocate(dvc.VCSpec{Name: "ptjob", Nodes: 3, VMRAM: 256 << 20})
	// PTRANS: the paper's communication-heavy consistency stress, with
	// real matrix data verified at the end.
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewPTRANS(30, 7, 2500, 10) })
	s.RunFor(2 * dvc.Second)

	ck := s.MustCheckpoint(vc)
	fmt.Printf("checkpoint gen %d staged (%d images)\n", ck.Generation, len(ck.Images))

	// Disaster: one hosting node crashes. Its domain is destroyed and
	// the remaining ranks' connections start timing out.
	victim := vc.PhysicalNodes()[1]
	victim.Fail()
	fmt.Printf("node %s crashed!\n", victim.ID())
	s.RunFor(5 * dvc.Second)

	// Recovery: destroy the remnants, restore ALL VMs from the last
	// checkpoint onto healthy nodes.
	vc.Teardown()
	targets := s.FreeNodes("alpha")
	if len(targets) < 3 {
		log.Fatal("not enough healthy nodes")
	}
	rr, err := s.Recover(vc, ck.Generation, targets[:3])
	if err != nil || !rr.OK {
		log.Fatalf("recovery failed: %v %+v", err, rr)
	}
	fmt.Printf("restored on fresh nodes (staging %v): ", rr.StageTime)
	for _, n := range vc.PhysicalNodes() {
		fmt.Printf("%s ", n.ID())
	}
	fmt.Println()

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	if !js.AllOK() {
		log.Fatalf("job failed after recovery: %+v", js)
	}
	for r, app := range vc.RankApps() {
		pt := app.(*hpcc.PTRANS)
		if !pt.Passed {
			log.Fatalf("rank %d verification failed", r)
		}
	}
	fmt.Println("PTRANS completed and verified after crash recovery: the job never knew")
}
