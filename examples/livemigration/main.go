// Live migration: the same running virtual cluster is moved twice — once
// with LSC stop-and-copy (the paper's mechanism) and once with pre-copy —
// to show the downtime difference. Pre-copy streams memory while the job
// keeps computing; the coordinated pause only covers the residual dirty
// pages.
package main

import (
	"fmt"
	"log"

	"dvc"
)

func main() {
	s := dvc.NewSimulation(31)
	s.AddCluster("alpha", 4)
	s.AddCluster("beta", 4)
	s.Start()

	launch := func(name, cluster string) *dvc.VirtualCluster {
		vc := s.MustAllocate(dvc.VCSpec{Name: name, Nodes: 4, VMRAM: 256 << 20, Clusters: []string{cluster}})
		vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(10000, 20*dvc.Millisecond, 2048) })
		for _, d := range vc.Domains() {
			d.SetDirtyRate(20e6) // a moderately busy HPC code
		}
		s.RunFor(2 * dvc.Second)
		return vc
	}

	// Round 1: stop-and-copy (checkpoint + restore on the other side).
	vc := launch("job-stop", "alpha")
	stop, err := s.Migrate(vc, s.FreeNodes("beta"))
	if err != nil || !stop.OK {
		log.Fatalf("stop-and-copy failed: %v %+v", err, stop)
	}
	fmt.Printf("stop-and-copy: downtime %v (the job is frozen for the whole image copy)\n", stop.Downtime)
	if !s.RunUntilJobDone(vc, 2*dvc.Hour).AllOK() {
		log.Fatal("job failed after stop-and-copy")
	}
	vc.Release()

	// Round 2: pre-copy live migration back the other way.
	vc2 := launch("job-live", "alpha")
	live, err := s.LiveMigrate(vc2, s.FreeNodes("beta"), dvc.DefaultLiveConfig())
	if err != nil || !live.OK {
		log.Fatalf("live migration failed: %v %+v", err, live)
	}
	fmt.Printf("pre-copy live: downtime %v after %d rounds, %.2f GiB moved\n",
		live.Downtime, live.Rounds, float64(live.BytesCopied)/(1<<30))
	if !s.RunUntilJobDone(vc2, 2*dvc.Hour).AllOK() {
		log.Fatal("job failed after live migration")
	}

	fmt.Printf("downtime ratio: %.0fx in favour of pre-copy\n",
		stop.Downtime.Seconds()/live.Downtime.Seconds())
}
