// Quickstart: build a site, allocate a virtual cluster, run an unmodified
// MPI application (HPL), take one completely transparent parallel
// checkpoint, and let the job run to a verified finish.
package main

import (
	"fmt"
	"log"

	"dvc"
	"dvc/internal/hpcc"
)

func main() {
	// A deterministic simulation: same seed, same run.
	s := dvc.NewSimulation(42)
	s.AddCluster("alpha", 8)
	s.Start() // NTP begins disciplining the node clocks

	// DVC goal 1: a per-job software environment. The job asks for a
	// 4-VM virtual cluster; DVC picks physical nodes and boots Xen-like
	// domains on them.
	vc := s.MustAllocate(dvc.VCSpec{
		Name:     "quickstart",
		Nodes:    4,
		VMRAM:    256 << 20,
		Watchdog: dvc.DefaultWatchdog(),
	})
	fmt.Printf("virtual cluster ready on: ")
	for _, n := range vc.PhysicalNodes() {
		fmt.Printf("%s ", n.ID())
	}
	fmt.Println()

	// Launch HPL. The application is a plain MPI program: it knows
	// nothing about checkpoints.
	if _, err := vc.LaunchMPI(6000, func(rank int) dvc.App {
		return dvc.NewHPL(128, 42, 2e-5) // N=128, slowed so we can interrupt it
	}); err != nil {
		log.Fatal(err)
	}
	s.RunFor(2 * dvc.Second) // the factorisation is now mid-flight

	// Lazy Synchronous Checkpointing: every VM pauses at the same
	// NTP-scheduled instant; TCP repairs the cut network state.
	res := s.MustCheckpoint(vc)
	fmt.Printf("checkpoint: skew=%v (TCP budget %v), downtime=%v, %d images stored\n",
		res.SaveSkew, dvc.TCPRetryBudget(), res.Downtime, len(res.Images))

	// The job resumes from the restored VMs and finishes.
	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	if !js.AllOK() {
		log.Fatalf("job failed: %+v", js)
	}
	h := vc.RankApps()[0].(*hpcc.HPL)
	fmt.Printf("HPL finished: residual=%.3g passed=%v\n", h.Residual, h.Passed)
	fmt.Printf("reported wall time %v vs CPU time %v — the gap is the frozen interval\n",
		h.WallTime(), h.CPUTime())
}
