// Proactive migration: a hardware fault is predicted on a hosting node,
// so the whole running virtual cluster migrates to another cluster before
// the node dies. The job never observes the fault — the paper's
// "avoidance of job failure when hardware faults can be predicted".
package main

import (
	"fmt"
	"log"

	"dvc"
	"dvc/internal/hpcc"
)

func main() {
	s := dvc.NewSimulation(23)
	s.AddCluster("alpha", 4)
	s.AddCluster("beta", 4)
	s.Start()

	vc := s.MustAllocate(dvc.VCSpec{
		Name: "mig", Nodes: 4, VMRAM: 256 << 20,
		Clusters: []string{"alpha"},
	})
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(5000, 20*dvc.Millisecond, 2048) })
	s.RunFor(2 * dvc.Second)
	fmt.Printf("job running on alpha: %s..%s\n",
		vc.PhysicalNodes()[0].ID(), vc.PhysicalNodes()[3].ID())

	// The health monitor predicts alpha-n00 will fail in ~60 s.
	doomed := vc.PhysicalNodes()[0]
	s.Site().Kernel.After(60*dvc.Second, func() {
		doomed.Fail()
		fmt.Printf("(node %s has now actually died)\n", doomed.ID())
	})
	fmt.Printf("fault predicted on %s: migrating the whole VC to beta now\n", doomed.ID())

	res, err := s.Migrate(vc, s.FreeNodes("beta"))
	if err != nil || !res.OK {
		log.Fatalf("migration failed: %v %+v", err, res)
	}
	fmt.Printf("migrated in %v of downtime; now on %s..%s\n",
		res.Downtime, vc.PhysicalNodes()[0].ID(), vc.PhysicalNodes()[3].ID())

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	if !js.AllOK() {
		log.Fatalf("job failed: %+v", js)
	}
	for _, app := range vc.RankApps() {
		if !app.(*hpcc.Halo).Finished {
			log.Fatal("rank did not finish")
		}
	}
	if doomed.Up() {
		log.Fatal("the predicted fault never happened — scenario broken")
	}
	fmt.Println("job completed; the predicted hardware fault was fully masked")
}
