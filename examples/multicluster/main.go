// Multi-cluster spanning: a single parallel job runs across two physical
// clusters inside one virtual cluster — DVC goals 2 and 3. The VMs give
// every rank the same software stack regardless of which cluster hosts
// it, and the fabric routes inter-cluster traffic over the slower
// campus link.
package main

import (
	"fmt"
	"log"

	"dvc"
	"dvc/internal/hpcc"
)

func main() {
	s := dvc.NewSimulation(11)
	// Two small clusters: neither can host a 10-wide job alone.
	s.AddCluster("alpha", 6)
	s.AddCluster("beta", 6)
	s.Start()

	vc := s.MustAllocate(dvc.VCSpec{Name: "wide", Nodes: 10, VMRAM: 256 << 20})
	if !vc.SpansClusters() {
		log.Fatal("expected the placement to span clusters")
	}
	perCluster := map[string]int{}
	for _, n := range vc.PhysicalNodes() {
		perCluster[n.Cluster()]++
	}
	fmt.Printf("10-way virtual cluster spans: %v\n", perCluster)

	// The job is an ordinary MPI program; ranks on different clusters
	// just see slightly higher latency to some peers.
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHPL(120, 11, 1e-4) })
	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	if !js.AllOK() {
		log.Fatalf("spanning job failed: %+v", js)
	}
	h := vc.RankApps()[0].(*hpcc.HPL)
	fmt.Printf("HPL across clusters: residual=%.3g passed=%v wall=%v\n",
		h.Residual, h.Passed, h.WallTime())

	// And the spanning VC is still checkpointable as one unit.
	s.RunFor(dvc.Second)
	vc2 := s.MustAllocate(dvc.VCSpec{Name: "wide2", Nodes: 10, VMRAM: 256 << 20})
	vc2.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(3000, 20*dvc.Millisecond, 2048) })
	s.RunFor(2 * dvc.Second)
	res := s.MustCheckpoint(vc2)
	fmt.Printf("cross-cluster checkpoint: skew=%v ok=%v\n", res.SaveSkew, res.OK)
	if !s.RunUntilJobDone(vc2, 2*dvc.Hour).AllOK() {
		log.Fatal("checkpointed spanning job failed")
	}
	fmt.Println("spanning virtual cluster checkpointed and completed")
}
