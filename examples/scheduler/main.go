// Scheduler: the resource-manager view of DVC. The same randomly
// generated job mix runs twice on a fault-prone 12-node cluster — once
// natively with requeue-on-failure, once on DVC virtual clusters with
// periodic LSC checkpoints — and the run compares how much computed work
// each policy throws away.
package main

import (
	"fmt"
	"log"

	"dvc"
	"dvc/internal/phys"
)

func main() {
	mix := dvc.MixConfig{
		Count:       10,
		ArrivalMean: 30 * dvc.Second,
		Widths:      []int{2, 4, 6},
		WorkMin:     3 * dvc.Minute,
		WorkMax:     10 * dvc.Minute,
	}
	trace := dvc.GenerateTraceSeeded(99, mix)

	run := func(backend string) dvc.RMStats {
		s := dvc.NewSimulation(99)
		s.AddCluster("alpha", 12)
		s.Start()

		var cfg dvc.RMConfig
		if backend == "dvc" {
			lsc := dvc.NTPLSC()
			lsc.ContinueAfterSave = true
			s.SetLSC(lsc)
			cfg = dvc.DefaultRMConfig(dvc.DVCBackend)
			cfg.CheckpointInterval = 2 * dvc.Minute
		} else {
			cfg = dvc.DefaultRMConfig(dvc.PhysicalBackend)
		}
		r := s.NewResourceManager(cfg)
		r.SubmitTrace(trace)

		// Node faults throughout the run, with repairs.
		inj := phys.NewInjector(s.Site().Kernel, phys.InjectorConfig{
			MTBF:       90 * dvc.Minute,
			RepairTime: 5 * dvc.Minute,
		})
		inj.Start(s.Site().Nodes())

		stats := r.RunUntilAllDone(24 * dvc.Hour)
		inj.Stop()
		fmt.Printf("%-9s completed=%d/%d crashes=%d makespan=%v wasted=%v util=%.0f%%\n",
			backend, stats.Completed, len(trace), inj.Crashes(), stats.Makespan,
			stats.TotalWasted, 100*stats.Utilization(12, stats.Makespan))
		return stats
	}

	physical := run("physical")
	dvcStats := run("dvc")

	if physical.Completed != len(trace) || dvcStats.Completed != len(trace) {
		log.Fatal("not every job completed")
	}
	if dvcStats.TotalWasted < physical.TotalWasted {
		fmt.Printf("\nDVC+LSC threw away %v less computed work than requeue-from-scratch\n",
			physical.TotalWasted-dvcStats.TotalWasted)
	} else {
		fmt.Println("\n(no faults hit running jobs this time; try another seed)")
	}
}
