// Command dvcsim regenerates the paper's tables and figures.
//
// Usage:
//
//	dvcsim -list
//	dvcsim -exp E1 [-seed 42] [-trials 20]
//	dvcsim -exp all [-full]
//	dvcsim -exp E2 -trials 1 -trace e2.jsonl -perfetto e2.json
//
// Each experiment prints its table(s) followed by PASS/FAIL shape checks
// against the paper's reported results. The exit status is non-zero if
// any check fails.
//
// With -trace or -perfetto a deterministic event trace of the run is
// recorded (same seed, same flags => byte-identical JSONL) and written as
// an event log and/or a Chrome trace_events file loadable in
// ui.perfetto.dev. Tracing also prints (or, with -json, embeds) the
// counter-registry snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dvc"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (E1..E14, A1, A2) or \"all\"")
		seed     = flag.Int64("seed", 42, "simulation seed")
		trials   = flag.Int("trials", 0, "trial count for statistical experiments (0 = default)")
		full     = flag.Bool("full", false, "paper-scale parameters (slow: E2 runs >2000 trials)")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")
		traceOut = flag.String("trace", "", "write a deterministic JSONL event trace to this file")
		perfOut  = flag.String("perfetto", "", "write a Chrome/Perfetto trace_events JSON to this file")
	)
	flag.Parse()

	if *list {
		dvc.WriteBanner(os.Stdout)
		for _, id := range dvc.ExperimentIDs() {
			fmt.Printf("  %-4s %s\n", id, dvc.ExperimentTitle(id))
		}
		return
	}

	opts := dvc.ExperimentOptions{Seed: *seed, Trials: *trials, Full: *full, Out: os.Stdout}
	if *jsonOut {
		opts.Out = nil // tables land in the JSON document instead
	} else {
		dvc.WriteBanner(os.Stdout)
		fmt.Println()
	}
	var tracer *dvc.Tracer
	if *traceOut != "" || *perfOut != "" {
		tracer = dvc.NewTracer()
		opts.Tracer = tracer
	}

	var results []*dvc.ExperimentResult
	if *exp == "all" {
		all, err := dvc.RunAllExperiments(opts)
		if err != nil {
			fatal(err)
		}
		results = all
	} else {
		res, err := dvc.RunExperiment(*exp, opts)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}

	if tracer != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, tracer.WriteJSONL); err != nil {
				fatal(err)
			}
		}
		if *perfOut != "" {
			if err := writeFile(*perfOut, tracer.WritePerfetto); err != nil {
				fatal(err)
			}
		}
		if !*jsonOut {
			fmt.Println(tracer.Registry().Table().String())
			fmt.Printf("dvcsim: %d trace events recorded\n\n", tracer.Len())
		}
	}

	failed := 0
	for _, res := range results {
		for range res.FailedChecks() {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if tracer != nil {
			// Merge the counter-registry snapshot alongside the results.
			err = enc.Encode(struct {
				Results  []*dvc.ExperimentResult `json:"results"`
				Registry json.Marshaler          `json:"registry"`
			}{results, tracer.Registry()})
		} else {
			err = enc.Encode(results)
		}
		if err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dvcsim: %d shape check(s) FAILED\n", failed)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("dvcsim: all shape checks passed")
	}
}

// writeFile writes one exporter's output to path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvcsim:", err)
	os.Exit(2)
}
