// Command dvcsim regenerates the paper's tables and figures.
//
// Usage:
//
//	dvcsim -list
//	dvcsim -exp E1 [-seed 42] [-trials 20]
//	dvcsim -exp all [-full] [-parallel 8]
//	dvcsim -exp E2 -trials 1 -trace e2.jsonl -perfetto e2.json
//	dvcsim -exp E2 -report out/           # self-contained run artifact
//	dvcsim -exp E2 -trace e2.jsonl -sample-every 10 -filter-type lsc,vm
//	dvcsim -exp E2 -flight 2000           # ring buffer dumped on failure
//
// Each experiment prints its table(s) followed by PASS/FAIL shape checks
// against the paper's reported results. The exit status is non-zero if
// any check fails.
//
// Independent trials fan out across a worker pool (-parallel; default one
// worker per core). Every table, check and trace byte is identical for
// any -parallel value — only wall-clock time changes. -partitions N
// selects the partitioned simulation engine (one sub-kernel per
// topology zone under conservative-lookahead sync, N bounding how many
// run concurrently); output is likewise identical for any value,
// including 0 (the serial kernel). -cpuprofile and -memprofile write
// pprof profiles of the run.
//
// With -trace a deterministic event trace of the run is streamed as
// JSONL through a fixed-size buffer (same seed, same flags =>
// byte-identical output), so tracer memory stays bounded no matter how
// long the run is; convert offline with dvctrace -convert to view in
// ui.perfetto.dev. -perfetto exports Chrome trace_events in-process
// (this buffers the records in memory). Tracing also prints (or, with
// -json, embeds) the counter-registry snapshot.
//
// -report dir/ writes a self-contained run artifact: config.json (the
// run's flags), results.json (tables + checks), registry.json,
// trace.jsonl, summary.json (per-type counts, span percentiles) and
// series.jsonl (windowed registry metrics sampled on virtual time).
//
// -flight N retains the last N trace records in a ring buffer and dumps
// them as JSONL when a shape check fails or the run panics — bounded
// observability for runs too big to trace in full.
//
// -filter-type/-filter-node/-filter-dom/-sample-every narrow the
// recorded stream deterministically (sampling is keyed on record
// sequence numbers; span begin/end records always pass). The filter
// applies to every sink, so filtered runs trade replay byte-identity
// with unfiltered runs for volume.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dvc"
	"dvc/internal/obs"
)

// main delegates to run so deferred profile writers execute before the
// process exits with run's status code.
func main() { os.Exit(run()) }

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment id (E1..E14, A1, A2) or \"all\"")
		seed     = flag.Int64("seed", 42, "simulation seed")
		trials   = flag.Int("trials", 0, "trial count for statistical experiments (0 = default)")
		full     = flag.Bool("full", false, "paper-scale parameters (slow: E2 runs >2000 trials)")
		parallel = flag.Int("parallel", 0, "worker pool size for independent trials (0 = one per core, 1 = serial); output is identical for any value")
		parts    = flag.Int("partitions", 0, "partitioned simulation engine: bound on concurrent partition sub-kernels (0 = serial kernel); output is identical for any value")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")
		traceOut = flag.String("trace", "", "stream a deterministic JSONL event trace to this file")
		perfOut  = flag.String("perfetto", "", "write a Chrome/Perfetto trace_events JSON to this file (buffers records in memory)")
		report   = flag.String("report", "", "write a self-contained run artifact into this directory")
		flightN  = flag.Int("flight", 0, "retain the last N trace records; dumped on failed check or panic")
		flightTo = flag.String("flight-out", "dvcsim-flight.jsonl", "flight-recorder dump path")
		fTypes   = flag.String("filter-type", "", "record only these comma-separated event types/categories")
		fNodes   = flag.String("filter-node", "", "record only these comma-separated nodes")
		fDoms    = flag.String("filter-dom", "", "record only these comma-separated domains")
		sampleN  = flag.Uint64("sample-every", 0, "record every Nth instant/counter record (seq%N==0); spans always pass")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		dcs      = flag.Int("dc", 0, "scale mode: generate this many datacenters (enables -cluster/-host/-vm)")
		clusters = flag.Int("cluster", 10, "scale mode: clusters per datacenter")
		hosts    = flag.Int("host", 26, "scale mode: hosts per cluster")
		vms      = flag.Int("vm", 8, "scale mode: virtual-cluster width of the reference job")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvcsim:", err)
				return
			}
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvcsim:", err)
			}
			f.Close()
		}()
	}

	if *list {
		dvc.WriteBanner(os.Stdout)
		for _, id := range dvc.ExperimentIDs() {
			fmt.Printf("  %-4s %s\n", id, dvc.ExperimentTitle(id))
		}
		return 0
	}

	opts := dvc.ExperimentOptions{Seed: *seed, Trials: *trials, Full: *full, Parallel: *parallel, Partitions: *parts, Out: os.Stdout}
	if *jsonOut {
		opts.Out = nil // tables land in the JSON document instead
	} else {
		dvc.WriteBanner(os.Stdout)
		fmt.Println()
	}

	// Assemble the trace pipeline: every requested consumer becomes one
	// sink on a shared tee, so the run records once and each sink sees the
	// identical stream.
	var (
		tracer  *dvc.Tracer
		mem     *obs.MemorySink  // only when -perfetto needs the full stream
		flight  *obs.FlightSink  // only with -flight
		summary *obs.SummarySink // only with -report
		sinks   []obs.Sink
		closers []*os.File
	)
	if *report != "" {
		if err := os.MkdirAll(*report, 0o755); err != nil {
			return fail(err)
		}
		f, err := os.Create(filepath.Join(*report, "trace.jsonl"))
		if err != nil {
			return fail(err)
		}
		closers = append(closers, f)
		summary = obs.NewSummarySink()
		sinks = append(sinks, obs.NewJSONLSink(f, 0), summary)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		closers = append(closers, f)
		sinks = append(sinks, obs.NewJSONLSink(f, 0))
	}
	if *perfOut != "" {
		mem = obs.NewMemorySink()
		sinks = append(sinks, mem)
	}
	if *flightN > 0 {
		flight = obs.NewFlightSink(*flightN)
		sinks = append(sinks, flight)
	}
	if len(sinks) > 0 {
		sink := obs.Tee(sinks...)
		filter := obs.FilterConfig{
			Types:  splitTypes(*fTypes),
			Nodes:  splitList(*fNodes),
			Doms:   splitList(*fDoms),
			EveryN: *sampleN,
		}
		if len(filter.Types) > 0 || len(filter.Nodes) > 0 || len(filter.Doms) > 0 || filter.EveryN > 1 {
			sink = obs.NewFilterSink(sink, filter)
		}
		tracer = obs.NewTracerWithSink(sink)
		opts.Tracer = tracer
	}

	// A panic mid-run still dumps the flight recorder before unwinding —
	// the retained window is exactly what a crash investigation needs.
	defer func() {
		if r := recover(); r != nil {
			dumpFlight(flight, *flightTo)
			panic(r)
		}
	}()

	if *dcs > 0 {
		spec := dvc.ScaleSpec{DCs: *dcs, ClustersPerDC: *clusters, HostsPerCluster: *hosts, VMs: *vms}
		return runScaleMode(spec, *seed, tracer, closers)
	}

	var results []*dvc.ExperimentResult
	if *exp == "all" {
		all, err := dvc.RunAllExperiments(opts)
		if err != nil {
			return fail(err)
		}
		results = all
	} else {
		res, err := dvc.RunExperiment(*exp, opts)
		if err != nil {
			return fail(err)
		}
		results = append(results, res)
	}

	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return fail(err)
		}
		if *perfOut != "" {
			if err := writeFile(*perfOut, func(w io.Writer) error {
				return obs.WritePerfettoRecords(w, mem.Records())
			}); err != nil {
				return fail(err)
			}
		}
		if *report != "" {
			if err := writeReport(*report, *exp, *seed, *trials, *full, *parallel, results, tracer, summary); err != nil {
				return fail(err)
			}
		}
		for _, f := range closers {
			if err := f.Close(); err != nil {
				return fail(err)
			}
		}
		if !*jsonOut {
			fmt.Println(tracer.Registry().Table().String())
			fmt.Printf("dvcsim: %d trace events recorded\n\n", tracer.Len())
		}
	}

	failed := 0
	for _, res := range results {
		for range res.FailedChecks() {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if tracer != nil {
			// Merge the counter-registry snapshot alongside the results.
			err = enc.Encode(struct {
				Results  []*dvc.ExperimentResult `json:"results"`
				Registry json.Marshaler          `json:"registry"`
			}{results, tracer.Registry()})
		} else {
			err = enc.Encode(results)
		}
		if err != nil {
			return fail(err)
		}
	}
	if failed > 0 {
		dumpFlight(flight, *flightTo)
		fmt.Fprintf(os.Stderr, "dvcsim: %d shape check(s) FAILED\n", failed)
		return 1
	}
	if !*jsonOut {
		fmt.Println("dvcsim: all shape checks passed")
	}
	return 0
}

// writeReport lays down the self-contained run artifact next to the
// already-streamed trace.jsonl: config, results (tables + checks),
// registry snapshot, streaming trace summary and the windowed metric
// series. Every file's bytes are a pure function of the run.
func writeReport(dir, exp string, seed int64, trials int, full bool, parallel int,
	results []*dvc.ExperimentResult, tracer *dvc.Tracer, summary *obs.SummarySink) error {
	writeJSON := func(name string, v any) error {
		return writeFile(filepath.Join(dir, name), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		})
	}
	cfg := struct {
		Experiment string `json:"experiment"`
		Seed       int64  `json:"seed"`
		Trials     int    `json:"trials,omitempty"`
		Full       bool   `json:"full,omitempty"`
		Parallel   int    `json:"parallel,omitempty"`
	}{exp, seed, trials, full, parallel}
	if err := writeJSON("config.json", cfg); err != nil {
		return err
	}
	if err := writeJSON("results.json", results); err != nil {
		return err
	}
	if err := writeJSON("registry.json", tracer.Registry()); err != nil {
		return err
	}
	if err := writeJSON("summary.json", &summary.Summary); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, "series.jsonl"), tracer.Series().WriteJSONL)
}

// dumpFlight writes the flight recorder's retained window, if one is
// armed and has records.
// runScaleMode generates a -dc/-cluster/-host topology, drives the
// reference LSC workload over it end-to-end, and prints throughput
// figures. Exit status is non-zero if the checkpoint or the job failed.
func runScaleMode(spec dvc.ScaleSpec, seed int64, tracer *dvc.Tracer, closers []*os.File) int {
	start := time.Now()
	res, err := dvc.RunScale(seed, spec, tracer)
	if err != nil {
		return fail(err)
	}
	wall := time.Since(start)

	// The inventory is one line per cluster; summarize past 20 clusters.
	lines := strings.Split(strings.TrimRight(res.Inventory, "\n"), "\n")
	const invHead = 4 // topology + leaf/spine/wan profile lines
	if len(lines) > invHead+20 {
		fmt.Println(strings.Join(lines[:invHead+20], "\n"))
		fmt.Printf("... (%d more clusters)\n", len(lines)-invHead-20)
	} else {
		fmt.Println(strings.Join(lines, "\n"))
	}
	fmt.Printf("scale: nodes=%d clusters=%d vms=%d sim=%v\n", res.Nodes, res.Clusters, res.VMs, res.SimTime)
	fmt.Printf("scale: events=%d wall=%v ns/event=%.0f events/s=%.0f\n",
		res.Events, wall.Round(time.Millisecond),
		float64(wall.Nanoseconds())/float64(res.Events),
		float64(res.Events)/wall.Seconds())
	fmt.Printf("scale: checkpoint=%v job=%v skew=%.2fms\n", res.CheckpointOK, res.JobOK, res.SaveSkew.Seconds()*1000)

	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return fail(err)
		}
		fmt.Printf("dvcsim: %d trace events recorded\n", tracer.Len())
	}
	for _, f := range closers {
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	if !res.OK() {
		fmt.Fprintln(os.Stderr, "dvcsim: scale run failed")
		return 1
	}
	return 0
}

func dumpFlight(flight *obs.FlightSink, path string) {
	if flight == nil || flight.Retained() == 0 {
		return
	}
	if err := writeFile(path, flight.Dump); err != nil {
		fmt.Fprintln(os.Stderr, "dvcsim: flight dump:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dvcsim: flight recorder dumped %d of %d records to %s\n",
		flight.Retained(), flight.Total(), path)
}

// writeFile writes one exporter's output to path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// splitTypes parses a comma-separated list of event types/categories.
func splitTypes(s string) []obs.EventType {
	parts := splitList(s)
	if parts == nil {
		return nil
	}
	out := make([]obs.EventType, len(parts))
	for i, p := range parts {
		out[i] = obs.EventType(p)
	}
	return out
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dvcsim:", err)
	return 2
}
