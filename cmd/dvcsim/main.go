// Command dvcsim regenerates the paper's tables and figures.
//
// Usage:
//
//	dvcsim -list
//	dvcsim -exp E1 [-seed 42] [-trials 20]
//	dvcsim -exp all [-full]
//
// Each experiment prints its table(s) followed by PASS/FAIL shape checks
// against the paper's reported results. The exit status is non-zero if
// any check fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dvc"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (E1..E14, A1, A2) or \"all\"")
		seed    = flag.Int64("seed", 42, "simulation seed")
		trials  = flag.Int("trials", 0, "trial count for statistical experiments (0 = default)")
		full    = flag.Bool("full", false, "paper-scale parameters (slow: E2 runs >2000 trials)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "emit results as JSON instead of tables")
	)
	flag.Parse()

	if *list {
		dvc.WriteBanner(os.Stdout)
		for _, id := range dvc.ExperimentIDs() {
			fmt.Printf("  %-4s %s\n", id, dvc.ExperimentTitle(id))
		}
		return
	}

	opts := dvc.ExperimentOptions{Seed: *seed, Trials: *trials, Full: *full, Out: os.Stdout}
	if *jsonOut {
		opts.Out = nil // tables land in the JSON document instead
	} else {
		dvc.WriteBanner(os.Stdout)
		fmt.Println()
	}

	var results []*dvc.ExperimentResult
	if *exp == "all" {
		all, err := dvc.RunAllExperiments(opts)
		if err != nil {
			fatal(err)
		}
		results = all
	} else {
		res, err := dvc.RunExperiment(*exp, opts)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}

	failed := 0
	for _, res := range results {
		for range res.FailedChecks() {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dvcsim: %d shape check(s) FAILED\n", failed)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("dvcsim: all shape checks passed")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvcsim:", err)
	os.Exit(2)
}
