// Command dvcsim regenerates the paper's tables and figures.
//
// Usage:
//
//	dvcsim -list
//	dvcsim -exp E1 [-seed 42] [-trials 20]
//	dvcsim -exp all [-full] [-parallel 8]
//	dvcsim -exp E2 -trials 1 -trace e2.jsonl -perfetto e2.json
//
// Each experiment prints its table(s) followed by PASS/FAIL shape checks
// against the paper's reported results. The exit status is non-zero if
// any check fails.
//
// Independent trials fan out across a worker pool (-parallel; default one
// worker per core). Every table, check and trace byte is identical for
// any -parallel value — only wall-clock time changes. -cpuprofile and
// -memprofile write pprof profiles of the run.
//
// With -trace or -perfetto a deterministic event trace of the run is
// recorded (same seed, same flags => byte-identical JSONL) and written as
// an event log and/or a Chrome trace_events file loadable in
// ui.perfetto.dev. Tracing also prints (or, with -json, embeds) the
// counter-registry snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"dvc"
)

// main delegates to run so deferred profile writers execute before the
// process exits with run's status code.
func main() { os.Exit(run()) }

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment id (E1..E14, A1, A2) or \"all\"")
		seed     = flag.Int64("seed", 42, "simulation seed")
		trials   = flag.Int("trials", 0, "trial count for statistical experiments (0 = default)")
		full     = flag.Bool("full", false, "paper-scale parameters (slow: E2 runs >2000 trials)")
		parallel = flag.Int("parallel", 0, "worker pool size for independent trials (0 = one per core, 1 = serial); output is identical for any value")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")
		traceOut = flag.String("trace", "", "write a deterministic JSONL event trace to this file")
		perfOut  = flag.String("perfetto", "", "write a Chrome/Perfetto trace_events JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvcsim:", err)
				return
			}
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvcsim:", err)
			}
			f.Close()
		}()
	}

	if *list {
		dvc.WriteBanner(os.Stdout)
		for _, id := range dvc.ExperimentIDs() {
			fmt.Printf("  %-4s %s\n", id, dvc.ExperimentTitle(id))
		}
		return 0
	}

	opts := dvc.ExperimentOptions{Seed: *seed, Trials: *trials, Full: *full, Parallel: *parallel, Out: os.Stdout}
	if *jsonOut {
		opts.Out = nil // tables land in the JSON document instead
	} else {
		dvc.WriteBanner(os.Stdout)
		fmt.Println()
	}
	var tracer *dvc.Tracer
	if *traceOut != "" || *perfOut != "" {
		tracer = dvc.NewTracer()
		opts.Tracer = tracer
	}

	var results []*dvc.ExperimentResult
	if *exp == "all" {
		all, err := dvc.RunAllExperiments(opts)
		if err != nil {
			return fail(err)
		}
		results = all
	} else {
		res, err := dvc.RunExperiment(*exp, opts)
		if err != nil {
			return fail(err)
		}
		results = append(results, res)
	}

	if tracer != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, tracer.WriteJSONL); err != nil {
				return fail(err)
			}
		}
		if *perfOut != "" {
			if err := writeFile(*perfOut, tracer.WritePerfetto); err != nil {
				return fail(err)
			}
		}
		if !*jsonOut {
			fmt.Println(tracer.Registry().Table().String())
			fmt.Printf("dvcsim: %d trace events recorded\n\n", tracer.Len())
		}
	}

	failed := 0
	for _, res := range results {
		for range res.FailedChecks() {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if tracer != nil {
			// Merge the counter-registry snapshot alongside the results.
			err = enc.Encode(struct {
				Results  []*dvc.ExperimentResult `json:"results"`
				Registry json.Marshaler          `json:"registry"`
			}{results, tracer.Registry()})
		} else {
			err = enc.Encode(results)
		}
		if err != nil {
			return fail(err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dvcsim: %d shape check(s) FAILED\n", failed)
		return 1
	}
	if !*jsonOut {
		fmt.Println("dvcsim: all shape checks passed")
	}
	return 0
}

// writeFile writes one exporter's output to path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dvcsim:", err)
	return 2
}
