// Command dvctrace generates, validates and summarises job traces for
// the resource-manager experiments, and summarises observability event
// traces recorded by dvcsim -trace.
//
// Usage:
//
//	dvctrace -gen 20 -seed 7 > trace.json      # synthesise a mix
//	dvctrace -validate trace.json              # parse + sanity-check
//	dvctrace -summary trace.json               # widths, work, arrival span
//	dvctrace -stats e2.jsonl                   # event counts + LSC epoch percentiles
//
// Generated traces feed rm.SubmitTrace (and can be archived next to the
// experiment output that consumed them).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"dvc/internal/metrics"
	"dvc/internal/obs"
	"dvc/internal/sim"
	"dvc/internal/workload"
)

func main() {
	var (
		gen      = flag.Int("gen", 0, "generate a trace with this many jobs")
		seed     = flag.Int64("seed", 42, "generation seed")
		arrival  = flag.Duration("arrival", 30*time.Second, "mean inter-arrival time")
		workMin  = flag.Duration("work-min", time.Minute, "minimum per-node work")
		workMax  = flag.Duration("work-max", 10*time.Minute, "maximum per-node work")
		validate = flag.String("validate", "", "validate a trace file")
		summary  = flag.String("summary", "", "summarise a trace file")
		stats    = flag.String("stats", "", "summarise an observability JSONL event trace (dvcsim -trace)")
	)
	flag.Parse()

	switch {
	case *gen > 0:
		cfg := workload.DefaultMix(*gen)
		cfg.ArrivalMean = sim.Duration(*arrival)
		cfg.WorkMin = sim.Duration(*workMin)
		cfg.WorkMax = sim.Duration(*workMax)
		trace := workload.Generate(rand.New(rand.NewSource(*seed)), cfg)
		if err := workload.WriteTrace(os.Stdout, trace); err != nil {
			fatal(err)
		}
	case *validate != "":
		trace := load(*validate)
		fmt.Printf("ok: %d jobs\n", len(trace))
	case *summary != "":
		trace := load(*summary)
		summarise(trace)
	case *stats != "":
		eventStats(*stats)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) []workload.JobSpec {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	trace, err := workload.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	return trace
}

func summarise(trace []workload.JobSpec) {
	if len(trace) == 0 {
		fmt.Println("empty trace")
		return
	}
	var width, work metrics.Sample
	stacks := map[string]int{}
	var lastArrival sim.Time
	var nodeSeconds float64
	for _, j := range trace {
		width.Add(float64(j.Width))
		work.AddTime(j.Work)
		stacks[j.Stack]++
		if j.Arrival > lastArrival {
			lastArrival = j.Arrival
		}
		nodeSeconds += float64(j.Width) * j.Work.Seconds()
	}
	tbl := metrics.NewTable(fmt.Sprintf("trace: %d jobs over %v", len(trace), lastArrival),
		"metric", "min", "mean", "max")
	tbl.Row("width", width.Min(), width.Mean(), width.Max())
	tbl.Row("work (s)", work.Min(), work.Mean(), work.Max())
	fmt.Print(tbl.String())
	fmt.Printf("total demand: %.0f node-seconds\n", nodeSeconds)
	// Sorted stack names: the summary must be byte-identical for the same
	// trace, or diffing archived runs turns into noise (dvclint: mapiter).
	names := make([]string, 0, len(stacks))
	for stack := range stacks {
		names = append(names, stack)
	}
	sort.Strings(names)
	for _, stack := range names {
		n := stacks[stack]
		if stack == "" {
			stack = "(any)"
		}
		fmt.Printf("stack %-16s %d jobs\n", stack, n)
	}
}

// eventStats reads an observability JSONL event trace and prints the
// per-event-type record counts plus duration percentiles for LSC epoch
// spans (B/E records paired by span id). Output is sorted, so identical
// traces summarise byte-identically.
func eventStats(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}

	counts := map[string]int{}
	begins := map[uint64]sim.Time{} // lsc.epoch begin TS, keyed by begin seq
	var epochs metrics.Sample
	commits, aborts := 0, 0
	for _, r := range recs {
		counts[string(r.Type)]++
		switch r.Type {
		case obs.EvLSCEpoch:
			switch r.Ph {
			case obs.PhaseBegin:
				begins[r.Span] = r.TS
			case obs.PhaseEnd:
				if start, ok := begins[r.Span]; ok {
					epochs.AddTime(r.TS - start)
				}
			}
		case obs.EvLSCCommit:
			commits++
		case obs.EvLSCAbort:
			aborts++
		}
	}

	tbl := metrics.NewTable(fmt.Sprintf("event trace: %d records", len(recs)), "event", "count")
	types := make([]string, 0, len(counts))
	for typ := range counts {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		tbl.Row(typ, counts[typ])
	}
	fmt.Print(tbl.String())

	if epochs.N() > 0 {
		fmt.Printf("lsc epochs: %d complete (%d commit, %d abort)\n", epochs.N(), commits, aborts)
		fmt.Printf("epoch duration  p50 %s  p90 %s  p99 %s  max %s\n",
			fmtDur(epochs.Percentile(50)), fmtDur(epochs.Percentile(90)),
			fmtDur(epochs.Percentile(99)), fmtDur(epochs.Max()))
	}
}

// fmtDur renders a duration sampled in seconds.
func fmtDur(seconds float64) string {
	return sim.Time(seconds * float64(sim.Second)).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvctrace:", err)
	os.Exit(1)
}
