// Command dvctrace generates, validates and summarises job traces for
// the resource-manager experiments, and queries, summarises, converts
// and diffs observability event traces recorded by dvcsim.
//
// Usage:
//
//	dvctrace -gen 20 -seed 7 > trace.json      # synthesise a mix
//	dvctrace -validate trace.json              # parse + sanity-check
//	dvctrace -summary trace.json               # widths, work, arrival span
//	dvctrace -stats e2.jsonl                   # event counts + LSC epoch percentiles
//	dvctrace -query e2.jsonl -type lsc -from 10s -to 2m
//	dvctrace -query e2.jsonl -node n3 -every 10 > sampled.jsonl
//	dvctrace -spans e2.jsonl -top 5            # slowest span names by p99
//	dvctrace -convert e2.jsonl -o e2.json      # offline JSONL → Perfetto
//	dvctrace -diff a.jsonl b.jsonl             # first divergent record
//
// Event-trace subcommands stream the input line at a time, so they work
// on traces far larger than memory; only -convert materialises records
// (the Perfetto metadata needs the full node/domain universe).
//
// -diff compares two traces byte-for-byte line by line and reports the
// first divergent record — the debugging tool for the replay contract:
// two same-seed runs must produce identical traces, and when they don't,
// the first divergence localises the nondeterminism.
//
// Generated job traces feed rm.SubmitTrace (and can be archived next to
// the experiment output that consumed them).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"dvc/internal/metrics"
	"dvc/internal/obs"
	"dvc/internal/sim"
	"dvc/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		gen      = flag.Int("gen", 0, "generate a trace with this many jobs")
		seed     = flag.Int64("seed", 42, "generation seed")
		arrival  = flag.Duration("arrival", 30*time.Second, "mean inter-arrival time")
		workMin  = flag.Duration("work-min", time.Minute, "minimum per-node work")
		workMax  = flag.Duration("work-max", 10*time.Minute, "maximum per-node work")
		validate = flag.String("validate", "", "validate a job trace file")
		summary  = flag.String("summary", "", "summarise a job trace file")
		stats    = flag.String("stats", "", "summarise an observability JSONL event trace (dvcsim -trace)")
		query    = flag.String("query", "", "filter an event trace to stdout as JSONL")
		spans    = flag.String("spans", "", "per-span-name duration percentiles for an event trace")
		topK     = flag.Int("top", 0, "with -spans: only the K slowest span names by p99")
		convert  = flag.String("convert", "", "convert an event trace to Perfetto trace_events JSON")
		out      = flag.String("o", "", "with -convert: output path (default stdout)")
		diff     = flag.Bool("diff", false, "compare two event traces: dvctrace -diff a.jsonl b.jsonl")
		types    = flag.String("type", "", "with -query: comma-separated event types or categories (lsc, vm.pause)")
		nodes    = flag.String("node", "", "with -query: comma-separated node names")
		doms     = flag.String("dom", "", "with -query: comma-separated domain names")
		from     = flag.Duration("from", 0, "with -query: keep records at or after this virtual time")
		to       = flag.Duration("to", 0, "with -query: keep records at or before this virtual time (0 = unbounded)")
		everyN   = flag.Uint64("every", 0, "with -query: keep every Nth instant/counter record (seq%N==0)")
	)
	flag.Parse()

	switch {
	case *gen > 0:
		cfg := workload.DefaultMix(*gen)
		cfg.ArrivalMean = sim.Duration(*arrival)
		cfg.WorkMin = sim.Duration(*workMin)
		cfg.WorkMax = sim.Duration(*workMax)
		trace := workload.Generate(rand.New(rand.NewSource(*seed)), cfg)
		if err := workload.WriteTrace(os.Stdout, trace); err != nil {
			return fail(err)
		}
	case *validate != "":
		trace, err := load(*validate)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("ok: %d jobs\n", len(trace))
	case *summary != "":
		trace, err := load(*summary)
		if err != nil {
			return fail(err)
		}
		summarise(trace)
	case *stats != "":
		if err := eventStats(*stats); err != nil {
			return fail(err)
		}
	case *query != "":
		cfg := obs.FilterConfig{
			Types:  splitTypes(*types),
			Nodes:  splitList(*nodes),
			Doms:   splitList(*doms),
			From:   sim.Duration(*from),
			To:     sim.Duration(*to),
			EveryN: *everyN,
		}
		if err := queryTrace(*query, cfg, os.Stdout); err != nil {
			return fail(err)
		}
	case *spans != "":
		if err := spanStats(*spans, *topK, os.Stdout); err != nil {
			return fail(err)
		}
	case *convert != "":
		if err := convertTrace(*convert, *out); err != nil {
			return fail(err)
		}
	case *diff:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dvctrace: -diff needs exactly two trace files")
			return 2
		}
		same, err := diffTraces(flag.Arg(0), flag.Arg(1), os.Stdout)
		if err != nil {
			return fail(err)
		}
		if !same {
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

func load(path string) ([]workload.JobSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadTrace(f)
}

func summarise(trace []workload.JobSpec) {
	if len(trace) == 0 {
		fmt.Println("empty trace")
		return
	}
	var width, work metrics.Sample
	stacks := map[string]int{}
	var lastArrival sim.Time
	var nodeSeconds float64
	for _, j := range trace {
		width.Add(float64(j.Width))
		work.AddTime(j.Work)
		stacks[j.Stack]++
		if j.Arrival > lastArrival {
			lastArrival = j.Arrival
		}
		nodeSeconds += float64(j.Width) * j.Work.Seconds()
	}
	tbl := metrics.NewTable(fmt.Sprintf("trace: %d jobs over %v", len(trace), lastArrival),
		"metric", "min", "mean", "max")
	tbl.Row("width", width.Min(), width.Mean(), width.Max())
	tbl.Row("work (s)", work.Min(), work.Mean(), work.Max())
	fmt.Print(tbl.String())
	fmt.Printf("total demand: %.0f node-seconds\n", nodeSeconds)
	// Sorted stack names: the summary must be byte-identical for the same
	// trace, or diffing archived runs turns into noise (dvclint: mapiter).
	names := make([]string, 0, len(stacks))
	for stack := range stacks {
		names = append(names, stack)
	}
	sort.Strings(names)
	for _, stack := range names {
		n := stacks[stack]
		if stack == "" {
			stack = "(any)"
		}
		fmt.Printf("stack %-16s %d jobs\n", stack, n)
	}
}

// eventStats streams an observability JSONL event trace and prints the
// per-event-type record counts plus duration percentiles for LSC epoch
// spans (B/E records paired by span id). One record is held at a time —
// traces larger than memory summarise fine. Output is sorted, so
// identical traces summarise byte-identically.
func eventStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	counts := map[string]int{}
	begins := map[uint64]sim.Time{} // lsc.epoch begin TS, keyed by begin seq
	var epochs metrics.Sample
	commits, aborts, total := 0, 0, 0
	err = obs.DecodeJSONL(f, func(r *obs.Record) error {
		total++
		counts[string(r.Type)]++
		switch r.Type {
		case obs.EvLSCEpoch:
			switch r.Ph {
			case obs.PhaseBegin:
				begins[r.Span] = r.TS
			case obs.PhaseEnd:
				if start, ok := begins[r.Span]; ok {
					delete(begins, r.Span)
					epochs.AddTime(r.TS - start)
				}
			}
		case obs.EvLSCCommit:
			commits++
		case obs.EvLSCAbort:
			aborts++
		}
		return nil
	})
	if err != nil {
		return err
	}

	tbl := metrics.NewTable(fmt.Sprintf("event trace: %d records", total), "event", "count")
	types := make([]string, 0, len(counts))
	for typ := range counts {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		tbl.Row(typ, counts[typ])
	}
	fmt.Print(tbl.String())

	if epochs.N() > 0 {
		fmt.Printf("lsc epochs: %d complete (%d commit, %d abort)\n", epochs.N(), commits, aborts)
		fmt.Printf("epoch duration  p50 %s  p90 %s  p99 %s  max %s\n",
			fmtDur(epochs.Percentile(50)), fmtDur(epochs.Percentile(90)),
			fmtDur(epochs.Percentile(99)), fmtDur(epochs.Max()))
	}
	return nil
}

// queryTrace streams the trace through the filter, re-emitting matching
// records as JSONL. The output is a valid trace subset: record bytes are
// identical to the input lines (same encoder as the writer), so query
// output feeds back into -stats/-spans/-convert.
func queryTrace(path string, cfg obs.FilterConfig, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sink := obs.NewJSONLSink(w, 0)
	err = obs.DecodeJSONL(f, func(r *obs.Record) error {
		if !cfg.Match(r) {
			return nil
		}
		return sink.WriteRecord(r)
	})
	if err != nil {
		return err
	}
	return sink.Flush()
}

// spanStats streams the trace into a Summary and prints per-span-name
// duration percentiles, slowest first by p99. With top > 0 only the K
// slowest names print.
func spanStats(path string, top int, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum := obs.NewSummary()
	err = obs.DecodeJSONL(f, func(r *obs.Record) error {
		sum.Add(r)
		return nil
	})
	if err != nil {
		return err
	}

	names := sum.SpanNames()
	// Slowest first by p99; ties break on the sorted name order, so the
	// report is deterministic.
	sort.SliceStable(names, func(a, b int) bool {
		return sum.Spans(names[a]).Percentile(99) > sum.Spans(names[b]).Percentile(99)
	})
	if top > 0 && top < len(names) {
		names = names[:top]
	}
	tbl := metrics.NewTable(fmt.Sprintf("spans: %d records", sum.Total()),
		"span", "count", "p50", "p90", "p99", "max")
	for _, name := range names {
		d := sum.Spans(name)
		tbl.Row(name, d.N(),
			fmtDur(d.Percentile(50)), fmtDur(d.Percentile(90)),
			fmtDur(d.Percentile(99)), fmtDur(d.Max()))
	}
	_, err = fmt.Fprint(w, tbl.String())
	return err
}

// convertTrace converts a JSONL event trace to Perfetto trace_events
// JSON — byte-identical to what dvcsim's in-process exporter would have
// produced for the same records, so runs can stream JSONL and convert
// only the traces someone actually wants to look at.
func convertTrace(path, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := io.Writer(os.Stdout)
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	return obs.ConvertJSONL(f, w)
}

// diffTraces compares two JSONL traces line by line, reporting the first
// divergent record (or the point where one trace ends early). Comparison
// is on raw line bytes: the replay contract is byte identity, so a
// semantic comparison would hide real divergences.
func diffTraces(pathA, pathB string, w io.Writer) (same bool, err error) {
	fa, err := os.Open(pathA)
	if err != nil {
		return false, err
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		return false, err
	}
	defer fb.Close()

	sa := bufio.NewScanner(fa)
	sa.Buffer(make([]byte, 0, 64*1024), 16<<20)
	sb := bufio.NewScanner(fb)
	sb.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for {
		okA, okB := sa.Scan(), sb.Scan()
		line++
		switch {
		case okA && okB:
			if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
				fmt.Fprintf(w, "traces diverge at record %d:\n  %s: %s\n  %s: %s\n",
					line, pathA, sa.Bytes(), pathB, sb.Bytes())
				return false, nil
			}
		case okA && !okB:
			if err := sb.Err(); err != nil {
				return false, err
			}
			fmt.Fprintf(w, "%s ends at record %d; %s continues:\n  %s\n", pathB, line-1, pathA, sa.Bytes())
			return false, nil
		case !okA && okB:
			if err := sa.Err(); err != nil {
				return false, err
			}
			fmt.Fprintf(w, "%s ends at record %d; %s continues:\n  %s\n", pathA, line-1, pathB, sb.Bytes())
			return false, nil
		default:
			if err := sa.Err(); err != nil {
				return false, err
			}
			if err := sb.Err(); err != nil {
				return false, err
			}
			fmt.Fprintf(w, "traces identical: %d records\n", line-1)
			return true, nil
		}
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// splitTypes parses the -type flag into event types/categories.
func splitTypes(s string) []obs.EventType {
	parts := splitList(s)
	if parts == nil {
		return nil
	}
	out := make([]obs.EventType, len(parts))
	for i, p := range parts {
		out[i] = obs.EventType(p)
	}
	return out
}

// fmtDur renders a duration sampled in seconds.
func fmtDur(seconds float64) string {
	return sim.Time(seconds * float64(sim.Second)).String()
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dvctrace:", err)
	return 1
}
