// Command dvctrace generates, validates and summarises job traces for
// the resource-manager experiments.
//
// Usage:
//
//	dvctrace -gen 20 -seed 7 > trace.json      # synthesise a mix
//	dvctrace -validate trace.json              # parse + sanity-check
//	dvctrace -summary trace.json               # widths, work, arrival span
//
// Generated traces feed rm.SubmitTrace (and can be archived next to the
// experiment output that consumed them).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"dvc/internal/metrics"
	"dvc/internal/sim"
	"dvc/internal/workload"
)

func main() {
	var (
		gen      = flag.Int("gen", 0, "generate a trace with this many jobs")
		seed     = flag.Int64("seed", 42, "generation seed")
		arrival  = flag.Duration("arrival", 30*time.Second, "mean inter-arrival time")
		workMin  = flag.Duration("work-min", time.Minute, "minimum per-node work")
		workMax  = flag.Duration("work-max", 10*time.Minute, "maximum per-node work")
		validate = flag.String("validate", "", "validate a trace file")
		summary  = flag.String("summary", "", "summarise a trace file")
	)
	flag.Parse()

	switch {
	case *gen > 0:
		cfg := workload.DefaultMix(*gen)
		cfg.ArrivalMean = sim.Duration(*arrival)
		cfg.WorkMin = sim.Duration(*workMin)
		cfg.WorkMax = sim.Duration(*workMax)
		trace := workload.Generate(rand.New(rand.NewSource(*seed)), cfg)
		if err := workload.WriteTrace(os.Stdout, trace); err != nil {
			fatal(err)
		}
	case *validate != "":
		trace := load(*validate)
		fmt.Printf("ok: %d jobs\n", len(trace))
	case *summary != "":
		trace := load(*summary)
		summarise(trace)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) []workload.JobSpec {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	trace, err := workload.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	return trace
}

func summarise(trace []workload.JobSpec) {
	if len(trace) == 0 {
		fmt.Println("empty trace")
		return
	}
	var width, work metrics.Sample
	stacks := map[string]int{}
	var lastArrival sim.Time
	var nodeSeconds float64
	for _, j := range trace {
		width.Add(float64(j.Width))
		work.AddTime(j.Work)
		stacks[j.Stack]++
		if j.Arrival > lastArrival {
			lastArrival = j.Arrival
		}
		nodeSeconds += float64(j.Width) * j.Work.Seconds()
	}
	tbl := metrics.NewTable(fmt.Sprintf("trace: %d jobs over %v", len(trace), lastArrival),
		"metric", "min", "mean", "max")
	tbl.Row("width", width.Min(), width.Mean(), width.Max())
	tbl.Row("work (s)", work.Min(), work.Mean(), work.Max())
	fmt.Print(tbl.String())
	fmt.Printf("total demand: %.0f node-seconds\n", nodeSeconds)
	// Sorted stack names: the summary must be byte-identical for the same
	// trace, or diffing archived runs turns into noise (dvclint: mapiter).
	names := make([]string, 0, len(stacks))
	for stack := range stacks {
		names = append(names, stack)
	}
	sort.Strings(names)
	for _, stack := range names {
		n := stacks[stack]
		if stack == "" {
			stack = "(any)"
		}
		fmt.Printf("stack %-16s %d jobs\n", stack, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvctrace:", err)
	os.Exit(1)
}
