// Command dvcbench merges the per-subsystem benchmark artifacts
// (BENCH_*.json, written by the benchmarks when DVC_BENCH_JSON is set)
// into a committed trajectory file, and gates CI on regressions against
// the trajectory's last entry.
//
// Usage:
//
//	dvcbench -dir artifacts                      # print merged metrics
//	dvcbench -dir artifacts -check               # gate vs last trajectory entry
//	dvcbench -dir artifacts -append -label v7    # record a new entry
//
// Each artifact holds one JSON object per benchmark (JSONL or indented —
// both decode). Numeric fields become metrics keyed
// "<benchmark>.<field>"; run-shape fields (n, trials, workers, ...) are
// dropped.
//
// -check compares every current metric against the trajectory's last
// entry. A metric that got worse by more than the threshold (15% by
// default) is a regression. Machine-independent metrics — allocation
// counts and byte sizes — fail the run: they are pure functions of the
// code and a jump is a real change. Timing and throughput metrics
// (ns/op, MB/s, speedup) only warn by default, because CI runners vary
// too much run to run for a hard gate to stay honest; -strict promotes
// them to failures for same-machine comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("dir", "artifacts", "directory holding BENCH_*.json artifacts")
		trajectory = fs.String("trajectory", "BENCH_trajectory.json", "trajectory file")
		check      = fs.Bool("check", false, "fail on regressions against the trajectory's last entry")
		appendNew  = fs.Bool("append", false, "append the merged metrics as a new trajectory entry")
		label      = fs.String("label", "", "with -append: entry label (e.g. a PR number or commit)")
		threshold  = fs.Float64("threshold", 0.15, "relative regression threshold")
		strict     = fs.Bool("strict", false, "with -check: fail on timing/throughput regressions too, not just machine-independent metrics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	current, err := mergeArtifacts(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "dvcbench:", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintf(stderr, "dvcbench: no BENCH_*.json artifacts in %s\n", *dir)
		return 2
	}

	switch {
	case *check:
		traj, err := readTrajectory(*trajectory)
		if err != nil {
			fmt.Fprintln(stderr, "dvcbench:", err)
			return 2
		}
		if len(traj.Entries) == 0 {
			fmt.Fprintf(stderr, "dvcbench: %s has no entries to compare against\n", *trajectory)
			return 2
		}
		last := traj.Entries[len(traj.Entries)-1]
		regressions := compare(last.Metrics, current, *threshold)
		failed := 0
		for _, r := range regressions {
			verdict := "WARN"
			if r.Hard || *strict {
				verdict = "FAIL"
				failed++
			}
			fmt.Fprintf(stdout, "%s: %s: %.4g -> %.4g (%+.1f%%, threshold %.0f%%)\n",
				verdict, r.Metric, r.Old, r.New, r.Delta*100, *threshold*100)
		}
		fmt.Fprintf(stdout, "dvcbench: %d metrics vs entry %q: %d regression(s), %d fatal\n",
			len(current), last.Label, len(regressions), failed)
		if failed > 0 {
			return 1
		}
	case *appendNew:
		traj, err := readTrajectory(*trajectory)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(stderr, "dvcbench:", err)
			return 2
		}
		traj.Entries = append(traj.Entries, Entry{Label: *label, Metrics: current})
		if err := writeTrajectory(*trajectory, traj); err != nil {
			fmt.Fprintln(stderr, "dvcbench:", err)
			return 2
		}
		fmt.Fprintf(stdout, "dvcbench: appended entry %q (%d metrics) to %s\n", *label, len(current), *trajectory)
	default:
		for _, name := range sortedKeys(current) {
			fmt.Fprintf(stdout, "%-60s %.6g\n", name, current[name])
		}
	}
	return 0
}

// Entry is one recorded point on the benchmark trajectory.
type Entry struct {
	Label   string             `json:"label"`
	Metrics map[string]float64 `json:"metrics"`
}

// Trajectory is the committed history of benchmark results.
type Trajectory struct {
	Entries []Entry `json:"entries"`
}

// shapeFields describe the run, not its performance; they never become
// metrics.
var shapeFields = map[string]bool{
	"n": true, "events": true, "trials": true, "workers": true,
	"domains": true, "payload_bytes": true, "alloc_bytes": true,
	"wall_s": true, "nodes": true, "partitions": true, "cpus": true,
}

// mergeArtifacts decodes every BENCH_*.json in dir into one flat metric
// map keyed "<benchmark>.<field>". Files hold a stream of JSON objects
// (compact JSONL and indented documents both decode); later objects for
// the same benchmark overwrite earlier ones, so re-running a bench into
// the same artifact keeps the freshest numbers.
func mergeArtifacts(dir string) (map[string]float64, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := map[string]float64{}
	for _, path := range paths {
		if filepath.Base(path) == "BENCH_trajectory.json" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		err = decodeArtifact(f, out)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return out, nil
}

// decodeArtifact folds one artifact stream into the metric map.
func decodeArtifact(r io.Reader, out map[string]float64) error {
	dec := json.NewDecoder(r)
	for {
		var doc map[string]any
		if err := dec.Decode(&doc); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		name, _ := doc["benchmark"].(string)
		if name == "" {
			continue
		}
		name = strings.TrimPrefix(name, "Benchmark")
		fields := make([]string, 0, len(doc))
		for field := range doc {
			fields = append(fields, field)
		}
		sort.Strings(fields)
		for _, field := range fields {
			val, ok := doc[field].(float64)
			if !ok || field == "benchmark" || shapeFields[field] {
				continue
			}
			out[name+"."+field] = val
		}
	}
}

// Regression is one metric that moved past the threshold in the bad
// direction.
type Regression struct {
	Metric   string
	Old, New float64
	Delta    float64 // relative change, positive = worse
	Hard     bool    // machine-independent: always fatal
}

// higherIsBetter marks metrics where bigger numbers are improvements.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, ".speedup") ||
		strings.HasSuffix(metric, "_per_s") ||
		strings.HasSuffix(metric, "_mb_per_s")
}

// machineIndependent marks metrics that are pure functions of the code —
// allocation counts and byte sizes — where any regression is real, not
// runner noise.
func machineIndependent(metric string) bool {
	field := metric
	if i := strings.LastIndexByte(metric, '.'); i >= 0 {
		field = metric[i+1:]
	}
	return strings.Contains(field, "alloc") || strings.Contains(field, "bytes")
}

// compare finds current metrics that regressed past the threshold
// relative to the baseline. Metrics missing on either side are skipped
// (benches come and go); zero baselines gate absolutely — going from 0
// allocs to any allocs is a regression no ratio can express.
func compare(baseline, current map[string]float64, threshold float64) []Regression {
	var out []Regression
	for _, metric := range sortedKeys(current) {
		old, ok := baseline[metric]
		if !ok {
			continue
		}
		cur := current[metric]
		var delta float64
		switch {
		case old == 0:
			if cur <= 0 || higherIsBetter(metric) {
				continue
			}
			// A zero baseline is an absolute claim (0 allocs/op). Any
			// nonzero value is a full regression.
			delta = 1
		case higherIsBetter(metric):
			delta = (old - cur) / old
		default:
			delta = (cur - old) / old
		}
		if delta > threshold {
			out = append(out, Regression{
				Metric: metric, Old: old, New: cur, Delta: delta,
				Hard: machineIndependent(metric),
			})
		}
	}
	return out
}

func readTrajectory(path string) (Trajectory, error) {
	var traj Trajectory
	data, err := os.ReadFile(path)
	if err != nil {
		return traj, err
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		return traj, fmt.Errorf("%s: %w", path, err)
	}
	return traj, nil
}

func writeTrajectory(path string, traj Trajectory) error {
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
