package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDecodeArtifactBothShapes(t *testing.T) {
	// Compact JSONL (kernel/dataplane/obs artifacts) and an indented
	// document (fleet artifact) in one stream.
	input := `{"benchmark":"BenchmarkKernelChurn","n":1000,"ns_per_op":31.2,"allocs_per_op":0}
{"benchmark":"BenchmarkTimerRearm","ns_per_op":22.1,"allocs_per_op":0}
{
  "benchmark": "BenchmarkParallelSpeedup",
  "trials": 8,
  "workers": 4,
  "speedup": 2.5
}
`
	out := map[string]float64{}
	if err := decodeArtifact(strings.NewReader(input), out); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"KernelChurn.ns_per_op":     31.2,
		"KernelChurn.allocs_per_op": 0,
		"TimerRearm.ns_per_op":      22.1,
		"TimerRearm.allocs_per_op":  0,
		"ParallelSpeedup.speedup":   2.5,
	}
	if len(out) != len(want) {
		t.Fatalf("got %d metrics %v, want %d", len(out), out, len(want))
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("%s = %v, want %v", k, out[k], v)
		}
	}
}

func TestCompareDirections(t *testing.T) {
	base := map[string]float64{
		"A.ns_per_op":             100,
		"A.allocs_per_op":         2,
		"B.speedup":               2.0,
		"B.payload_mb_per_s":      1000,
		"C.alloc_b_per_payload_b": 2.0,
		"D.allocs_per_op":         0,
		"E.image_bytes_per_epoch": 1 << 20,
		"F.ns_per_op":             100,
		"Gone.ns_per_op":          5,
	}
	cur := map[string]float64{
		"A.ns_per_op":             120,     // 20% slower: regression, soft
		"A.allocs_per_op":         3,       // 50% more allocs: regression, hard
		"B.speedup":               1.5,     // 25% less speedup: regression, soft
		"B.payload_mb_per_s":      990,     // 1% slower: fine
		"C.alloc_b_per_payload_b": 2.1,     // 5% worse: fine
		"D.allocs_per_op":         1,       // zero baseline broken: hard
		"E.image_bytes_per_epoch": 1 << 20, // unchanged
		"F.ns_per_op":             80,      // improvement
		"New.ns_per_op":           42,      // no baseline: skipped
	}
	regs := compare(base, cur, 0.15)
	got := map[string]bool{} // metric -> hard
	for _, r := range regs {
		got[r.Metric] = r.Hard
	}
	want := map[string]bool{
		"A.ns_per_op":     false,
		"A.allocs_per_op": true,
		"B.speedup":       false,
		"D.allocs_per_op": true,
	}
	if len(got) != len(want) {
		t.Fatalf("regressions = %+v, want %v", regs, want)
	}
	for m, hard := range want {
		h, ok := got[m]
		if !ok || h != hard {
			t.Errorf("metric %s: got (present=%v hard=%v), want hard=%v", m, ok, h, hard)
		}
	}
}

func TestRunCheckAndAppend(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_kernel.json")
	writeArtifact := func(ns, allocs float64) {
		doc, _ := json.Marshal(map[string]any{
			"benchmark": "BenchmarkKernelChurn", "ns_per_op": ns, "allocs_per_op": allocs,
		})
		if err := os.WriteFile(artifact, append(doc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	traj := filepath.Join(dir, "BENCH_trajectory.json")

	// Seed the trajectory.
	writeArtifact(30, 0)
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-trajectory", traj, "-append", "-label", "seed"}, &out, &errb); code != 0 {
		t.Fatalf("append exited %d: %s%s", code, out.String(), errb.String())
	}

	// Unchanged numbers pass the gate.
	out.Reset()
	if code := run([]string{"-dir", dir, "-trajectory", traj, "-check"}, &out, &errb); code != 0 {
		t.Fatalf("clean check exited %d: %s", code, out.String())
	}

	// A new allocation on a zero baseline fails hard.
	writeArtifact(30, 1)
	out.Reset()
	if code := run([]string{"-dir", dir, "-trajectory", traj, "-check"}, &out, &errb); code != 1 {
		t.Fatalf("alloc regression exited %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL: KernelChurn.allocs_per_op") {
		t.Fatalf("missing FAIL line: %s", out.String())
	}

	// A timing-only regression warns by default, fails with -strict.
	writeArtifact(60, 0)
	out.Reset()
	if code := run([]string{"-dir", dir, "-trajectory", traj, "-check"}, &out, &errb); code != 0 {
		t.Fatalf("timing regression exited %d, want 0 (warn): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "WARN: KernelChurn.ns_per_op") {
		t.Fatalf("missing WARN line: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-dir", dir, "-trajectory", traj, "-check", "-strict"}, &out, &errb); code != 1 {
		t.Fatalf("strict timing regression exited %d, want 1: %s", code, out.String())
	}

	// The trajectory file itself is skipped when it lives next to the
	// artifacts.
	trajInDir := filepath.Join(dir, "BENCH_trajectory.json")
	if _, err := os.Stat(trajInDir); err != nil {
		t.Fatal(err)
	}
	merged, err := mergeArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := range merged {
		if strings.HasPrefix(k, "trajectory") {
			t.Fatalf("trajectory leaked into metrics: %v", merged)
		}
	}
}
