// Command dvcctl drives a DVC scenario end to end and narrates what
// happens — the operator's view of the system.
//
// Usage:
//
//	dvcctl -scenario checkpoint   # run HPL, take an LSC checkpoint, finish
//	dvcctl -scenario recover      # crash a node mid-run, restore from checkpoint
//	dvcctl -scenario migrate      # move a live virtual cluster between clusters
//	dvcctl -scenario livemigrate  # the same, with pre-copy
//	dvcctl -scenario naive        # reproduce the naive coordinator's failure
//	dvcctl -script plan.dvc       # run a scripted scenario ("-" = stdin)
//
// Flags -nodes and -seed size and seed the scenario. The script language
// is documented in internal/script.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dvc"
	"dvc/internal/script"
)

var out = os.Stdout

func main() {
	var (
		scenario   = flag.String("scenario", "checkpoint", "checkpoint | recover | migrate | livemigrate | naive")
		nodes      = flag.Int("nodes", 4, "virtual cluster size")
		seed       = flag.Int64("seed", 42, "simulation seed")
		scriptPath = flag.String("script", "", "run a scripted scenario from this file (\"-\" = stdin)")
	)
	flag.Parse()
	dvc.WriteBanner(out)

	if *scriptPath != "" {
		runScript(*seed, *scriptPath)
		return
	}

	switch *scenario {
	case "checkpoint":
		checkpointScenario(*seed, *nodes)
	case "recover":
		recoverScenario(*seed, *nodes)
	case "migrate":
		migrateScenario(*seed, *nodes)
	case "livemigrate":
		liveMigrateScenario(*seed, *nodes)
	case "naive":
		naiveScenario(*seed, *nodes)
	default:
		fmt.Fprintf(os.Stderr, "dvcctl: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func runScript(seed int64, path string) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvcctl:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	if err := script.New(seed, out).Run(r); err != nil {
		fmt.Fprintln(os.Stderr, "dvcctl:", err)
		os.Exit(1)
	}
}

func say(s *dvc.Simulation, format string, args ...any) {
	fmt.Fprintf(out, "[t=%8v] %s\n", s.Now(), fmt.Sprintf(format, args...))
}

func checkpointScenario(seed int64, nodes int) {
	s := dvc.NewSimulation(seed)
	s.AddCluster("alpha", nodes*2)
	s.Start()
	say(s, "site up: cluster alpha with %d nodes, NTP disciplining clocks", nodes*2)

	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: nodes, VMRAM: 256 << 20})
	say(s, "virtual cluster %q ready: %d Xen domains booted", vc.Name(), nodes)

	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHPL(128, seed, 2e-5) })
	say(s, "HPL (N=128) launched across %d ranks, completely unmodified", nodes)
	s.RunFor(2 * dvc.Second)

	res := s.MustCheckpoint(vc)
	say(s, "LSC checkpoint gen %d: save skew %v (budget %v), downtime %v",
		res.Generation, res.SaveSkew, dvc.TCPRetryBudget(), res.Downtime)

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	say(s, "job finished: %d ok, %d failed", js.Succeeded, js.Failed)
	if !js.AllOK() {
		os.Exit(1)
	}
}

func recoverScenario(seed int64, nodes int) {
	s := dvc.NewSimulation(seed)
	s.AddCluster("alpha", nodes*2+1)
	s.Start()
	cfg := dvc.NTPLSC()
	cfg.ContinueAfterSave = true
	s.SetLSC(cfg)

	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: nodes, VMRAM: 256 << 20})
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(6000, 20*dvc.Millisecond, 2048) })
	say(s, "halo-exchange job running on %d VMs", nodes)
	s.RunFor(2 * dvc.Second)

	ck := s.MustCheckpoint(vc)
	say(s, "checkpoint gen %d taken and staged to shared storage", ck.Generation)

	victim := vc.PhysicalNodes()[0]
	victim.Fail()
	say(s, "NODE %s CRASHED (hosting %s)", victim.ID(), vc.Domains()[0].Name())
	s.RunFor(5 * dvc.Second)

	vc.Teardown()
	targets := s.FreeNodes("alpha")[:nodes]
	say(s, "restoring whole virtual cluster from gen %d onto fresh nodes", ck.Generation)
	rr, err := s.Recover(vc, ck.Generation, targets)
	if err != nil || !rr.OK {
		say(s, "recovery failed: %v %v", err, rr)
		os.Exit(1)
	}
	say(s, "restored in %v of staging; job resumes from checkpoint", rr.StageTime)

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	say(s, "job finished after crash recovery: %d ok, %d failed", js.Succeeded, js.Failed)
	if !js.AllOK() {
		os.Exit(1)
	}
}

func migrateScenario(seed int64, nodes int) {
	s := dvc.NewSimulation(seed)
	s.AddCluster("alpha", nodes)
	s.AddCluster("beta", nodes)
	s.Start()

	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: nodes, VMRAM: 256 << 20, Clusters: []string{"alpha"}})
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(6000, 20*dvc.Millisecond, 2048) })
	say(s, "job running on cluster alpha")
	s.RunFor(2 * dvc.Second)

	say(s, "operator: migrate job1 to cluster beta (e.g. alpha drains for maintenance)")
	res, err := s.Migrate(vc, s.FreeNodes("beta"))
	if err != nil || !res.OK {
		say(s, "migration failed: %v %v", err, res)
		os.Exit(1)
	}
	say(s, "migrated: downtime %v; placement now %s...", res.Downtime, vc.PhysicalNodes()[0].ID())

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	say(s, "job finished on beta: %d ok, %d failed", js.Succeeded, js.Failed)
	if !js.AllOK() {
		os.Exit(1)
	}
}

func liveMigrateScenario(seed int64, nodes int) {
	s := dvc.NewSimulation(seed)
	s.AddCluster("alpha", nodes)
	s.AddCluster("beta", nodes)
	s.Start()

	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: nodes, VMRAM: 256 << 20, Clusters: []string{"alpha"}})
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(8000, 20*dvc.Millisecond, 2048) })
	s.RunFor(2 * dvc.Second)
	say(s, "job running on alpha; starting PRE-COPY live migration to beta")

	res, err := s.LiveMigrate(vc, s.FreeNodes("beta"), dvc.DefaultLiveConfig())
	if err != nil || !res.OK {
		say(s, "live migration failed: %v %+v", err, res)
		os.Exit(1)
	}
	say(s, "migrated after %d pre-copy rounds, %.1f GiB moved, total %v",
		res.Rounds, float64(res.BytesCopied)/(1<<30), res.TotalTime)
	say(s, "DOWNTIME was only %v (stop-and-copy would pause for the full image copy)", res.Downtime)

	js := s.RunUntilJobDone(vc, 2*dvc.Hour)
	say(s, "job finished on beta: %d ok, %d failed", js.Succeeded, js.Failed)
	if !js.AllOK() {
		os.Exit(1)
	}
}

func naiveScenario(seed int64, nodes int) {
	if nodes < 10 {
		nodes = 12
		fmt.Fprintln(out, "(naive scenario uses 12 nodes: the paper's failure regime)")
	}
	s := dvc.NewSimulation(seed)
	s.AddCluster("alpha", nodes)
	s.Start()
	s.SetLSC(dvc.NaiveLSC())

	vc := s.MustAllocate(dvc.VCSpec{Name: "job1", Nodes: nodes, VMRAM: 256 << 20})
	vc.LaunchMPI(6000, func(int) dvc.App { return dvc.NewHalo(4000, 20*dvc.Millisecond, 2048) })
	s.RunFor(2 * dvc.Second)
	say(s, "issuing naive (serial terminal) coordinated save over %d VMs...", nodes)

	res, err := s.Checkpoint(vc)
	if err != nil {
		say(s, "checkpoint error: %v", err)
		os.Exit(1)
	}
	say(s, "save skew was %v against a TCP retry budget of %v", res.SaveSkew, dvc.TCPRetryBudget())
	js := s.RunUntilJobDone(vc, dvc.Hour)
	if js.AllOK() {
		say(s, "this run survived — at %d nodes the paper saw ~90%% failures; try another -seed", nodes)
	} else {
		say(s, "JOB DIED: retransmission retries exhausted while peers were frozen (%d failed ranks)", js.Failed)
		say(s, "this is §3.1's result: the naive approach is \"unreliable at best\"")
	}
}
