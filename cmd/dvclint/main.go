// Command dvclint runs the determinism lint suite over the module.
//
// Usage:
//
//	go run ./cmd/dvclint ./...          # whole module (what CI runs)
//	go run ./cmd/dvclint ./internal/sim # one package
//	go run ./cmd/dvclint -run mapiter ./...
//	go run ./cmd/dvclint -list
//
// dvclint is a multichecker in the golang.org/x/tools sense, built on the
// repo's own dependency-free framework (internal/analysis). It enforces
// the five determinism invariants documented in DESIGN.md: nowallclock,
// noglobalrand, mapiter, noconcurrency, gobsafe. Findings can be waived
// line-by-line with a justification:
//
//	//lint:allow <analyzer> <why this is safe>
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvc/internal/analysis"
	"dvc/internal/analysis/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dvclint", flag.ContinueOnError)
	var (
		runOnly = fs.String("run", "", "comma-separated analyzer names to run (default: all that apply per package)")
		list    = fs.Bool("list", false, "list analyzers and exit")
		verbose = fs.Bool("v", false, "report the packages checked")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dvclint [flags] [packages]\n\nDeterminism lint for the DVC simulation core.\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var only map[string]bool
	if *runOnly != "" {
		only = make(map[string]bool)
		for _, name := range strings.Split(*runOnly, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				fmt.Fprintf(os.Stderr, "dvclint: unknown analyzer %q\n", name)
				return 2
			}
			only[name] = true
		}
	}

	root, err := loader.ModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(root, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		if !analysis.InModule(pkg.PkgPath) {
			continue
		}
		analyzers := analysis.AnalyzersFor(pkg.PkgPath)
		if only != nil {
			var filtered []*analysis.Analyzer
			for _, a := range analyzers {
				if only[a.Name] {
					filtered = append(filtered, a)
				}
			}
			analyzers = filtered
		}
		if *verbose {
			names := make([]string, len(analyzers))
			for i, a := range analyzers {
				names[i] = a.Name
			}
			fmt.Fprintf(os.Stderr, "dvclint: %s [%s]\n", pkg.PkgPath, strings.Join(names, " "))
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dvclint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
