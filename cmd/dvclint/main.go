// Command dvclint runs the determinism lint suite over the module.
//
// Usage:
//
//	go run ./cmd/dvclint ./...                        # whole module, text output
//	go run ./cmd/dvclint -format=sarif -o out.sarif ./...
//	go run ./cmd/dvclint -run mapiter ./internal/sim
//	go run ./cmd/dvclint -write-manifest STATE_MANIFEST.txt ./...
//	go run ./cmd/dvclint -manifest STATE_MANIFEST.txt ./...   # fail if stale
//	go run ./cmd/dvclint -list
//
// dvclint is a multichecker in the golang.org/x/tools sense, built on the
// repo's own dependency-free framework (internal/analysis). It enforces
// the determinism invariants documented in DESIGN.md: nowallclock,
// noglobalrand, mapiter, noconcurrency, gobsafe, snapshotstate, noalloc
// and fleetscope. Findings can be waived line-by-line with a mandatory
// justification:
//
//	//lint:allow <analyzer>[,<analyzer>] <why this is safe>
//
// or recorded in a reviewed baseline file (-baseline), keyed by
// (analyzer, file, message) so unrelated line drift does not invalidate
// entries. Output formats (-format): text (default), json, sarif
// (SARIF 2.1.0, consumed by CI for inline annotations). All formats are
// deterministic, globally sorted by (file, line, analyzer).
//
// Exit status is 0 when the tree is clean, 1 when there are findings
// (or the manifest is stale), 2 on usage or load errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dvc/internal/analysis"
	"dvc/internal/analysis/loader"
	"dvc/internal/analysis/report"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dvclint", flag.ContinueOnError)
	var (
		runOnly       = fs.String("run", "", "comma-separated analyzer names to run (default: all that apply per package)")
		list          = fs.Bool("list", false, "list analyzers and exit")
		verbose       = fs.Bool("v", false, "report the packages checked")
		format        = fs.String("format", "text", "output format: text, json, or sarif")
		out           = fs.String("o", "", "write findings to this file instead of stdout")
		baselinePath  = fs.String("baseline", "", "filter findings through this reviewed baseline file")
		writeBaseline = fs.String("write-baseline", "", "write current findings as a baseline file and exit")
		manifestPath  = fs.String("manifest", "", "fail if this checkpoint state manifest is out of date")
		writeManifest = fs.String("write-manifest", "", "write the checkpoint state manifest and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dvclint [flags] [packages]\n\nDeterminism lint for the DVC simulation core.\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "dvclint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	var only map[string]bool
	if *runOnly != "" {
		only = make(map[string]bool)
		for _, name := range strings.Split(*runOnly, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				fmt.Fprintf(os.Stderr, "dvclint: unknown analyzer %q\n", name)
				return 2
			}
			only[name] = true
		}
	}

	root, err := loader.ModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(root, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
		return 2
	}

	var modulePkgs []*analysis.Package
	for _, pkg := range pkgs {
		if analysis.InModule(pkg.PkgPath) {
			modulePkgs = append(modulePkgs, pkg)
		}
	}

	// Manifest modes operate on the same loaded packages as the lint run,
	// so the golden file always reflects exactly what the suite saw.
	if *writeManifest != "" {
		if err := os.WriteFile(*writeManifest, analysis.StateManifest(modulePkgs), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		return 0
	}

	var findings []report.Finding
	for _, pkg := range modulePkgs {
		analyzers := analysis.AnalyzersFor(pkg.PkgPath)
		if only != nil {
			var filtered []*analysis.Analyzer
			for _, a := range analyzers {
				if only[a.Name] {
					filtered = append(filtered, a)
				}
			}
			analyzers = filtered
		}
		if *verbose {
			names := make([]string, len(analyzers))
			for i, a := range analyzers {
				names[i] = a.Name
			}
			fmt.Fprintf(os.Stderr, "dvclint: %s [%s]\n", pkg.PkgPath, strings.Join(names, " "))
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, report.Finding{
				File:     relPath(root, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Package:  pkg.PkgPath,
			})
		}
	}
	report.Sort(findings)

	if *writeBaseline != "" {
		var buf bytes.Buffer
		if err := report.WriteBaseline(&buf, findings); err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*writeBaseline, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "dvclint: wrote %d finding(s) to baseline %s\n", len(findings), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		b, err := report.ParseBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %s: %v\n", *baselinePath, err)
			return 2
		}
		var stale []string
		findings, stale = b.Filter(findings)
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "dvclint: stale baseline entry (debt paid, remove it): %s\n", s)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = report.WriteText(w, findings)
	case "json":
		err = report.WriteJSON(w, findings)
	case "sarif":
		var rules []report.RuleDoc
		for _, a := range analysis.All() {
			rules = append(rules, report.RuleDoc{Name: a.Name, Doc: a.Doc})
		}
		rules = append(rules, report.RuleDoc{
			Name: analysis.DirectiveAnalyzer,
			Doc:  "malformed, unknown-name, unjustified or stale //lint:allow directives",
		})
		err = report.WriteSARIF(w, findings, rules)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvclint: %v\n", err)
		return 2
	}

	status := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dvclint: %d finding(s)\n", len(findings))
		status = 1
	}

	if *manifestPath != "" {
		want := analysis.StateManifest(modulePkgs)
		got, err := os.ReadFile(*manifestPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvclint: %v (generate it with -write-manifest %s)\n", err, *manifestPath)
			return 2
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "dvclint: %s is stale: checkpoint state changed; regenerate with\n  go run ./cmd/dvclint -write-manifest %s ./...\nand review the diff as a checkpoint-format change\n",
				*manifestPath, *manifestPath)
			status = 1
		}
	}
	return status
}

// relPath rewrites an absolute source path to be module-root-relative
// with forward slashes, so output is stable across checkouts and usable
// as a SARIF artifact URI.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}
